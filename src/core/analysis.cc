#include "core/analysis.hh"

#include <algorithm>

namespace centaur {

const char *
bottleneckName(Bottleneck b)
{
    switch (b) {
      case Bottleneck::LinkBandwidth:
        return "link-bandwidth";
      case Bottleneck::LinkLatency:
        return "link-latency";
      case Bottleneck::DramBandwidth:
        return "dram-bandwidth";
      case Bottleneck::MemoryParallelism:
        return "memory-parallelism";
      case Bottleneck::Compute:
        return "compute";
      case Bottleneck::Dispatch:
        return "dispatch";
    }
    return "?";
}

namespace {

double
mlpGflopsDemand(const DlrmConfig &model, std::uint32_t batch)
{
    return 2.0 *
           static_cast<double>(model.mlpMacsPerSample() +
                               model.interactionMacsPerSample()) *
           batch;
}

} // namespace

std::vector<PhaseVerdict>
analyzeCentaur(const InferenceResult &res, const DlrmConfig &model,
               const CentaurConfig &acc, const DramConfig &dram)
{
    std::vector<PhaseVerdict> out;

    // ----- EMB: channel bandwidth vs credit-limited latency -----
    {
        PhaseVerdict v;
        v.phase = Phase::Emb;
        const double eff = acc.channel.effectiveBandwidthGBps();
        const double dram_bw = dram.peakBandwidthGBps();
        const double ceiling = std::min(eff, dram_bw);
        v.utilization = res.effectiveEmbGBps / ceiling;
        if (v.utilization > 0.55) {
            v.limiter = eff <= dram_bw ? Bottleneck::LinkBandwidth
                                       : Bottleneck::DramBandwidth;
            v.note = "gathers saturate the channel; more chiplet "
                     "bandwidth converts directly into throughput";
        } else {
            v.limiter = Bottleneck::LinkLatency;
            v.note = "too few bytes in flight (small batch or "
                     "credit window); bandwidth is not the limit";
        }
        out.push_back(v);
    }

    // ----- MLP: dense array utilization -----
    {
        PhaseVerdict v;
        v.phase = Phase::Mlp;
        const Tick mlp_ticks = res.phaseTicks(Phase::Mlp);
        const double secs = secFromTicks(mlp_ticks);
        const double demand = mlpGflopsDemand(model, res.batch) / 1e9;
        const double achieved = secs > 0.0 ? demand / secs : 0.0;
        v.utilization = achieved / acc.peakGflops();
        if (v.utilization > 0.4) {
            v.limiter = Bottleneck::Compute;
            v.note = "PE arrays are busy; a larger array (ablation "
                     "C) reduces this phase";
        } else {
            v.limiter = Bottleneck::Dispatch;
            v.note = "layer control/pipeline fill dominates; the "
                     "array is underfilled at this batch";
        }
        out.push_back(v);
    }
    return out;
}

std::vector<PhaseVerdict>
analyzeCpuOnly(const InferenceResult &res, const DlrmConfig &model,
               const CpuConfig &cpu, const DramConfig &dram)
{
    std::vector<PhaseVerdict> out;

    // ----- EMB: DRAM bandwidth vs memory-level parallelism -----
    {
        PhaseVerdict v;
        v.phase = Phase::Emb;
        v.utilization =
            res.effectiveEmbGBps / dram.peakBandwidthGBps();
        if (v.utilization > 0.6) {
            v.limiter = Bottleneck::DramBandwidth;
            v.note = "memory system saturated";
        } else if (res.batch < cpu.cores) {
            v.limiter = Bottleneck::Dispatch;
            v.note = "batch recruits fewer threads than cores and "
                     "per-operator dispatch dominates";
        } else {
            v.limiter = Bottleneck::MemoryParallelism;
            v.note = "threads expose only a few outstanding misses "
                     "each (Section III-C's diagnosis)";
        }
        out.push_back(v);
    }

    // ----- MLP: AVX2 utilization -----
    {
        PhaseVerdict v;
        v.phase = Phase::Mlp;
        const double secs = secFromTicks(res.phaseTicks(Phase::Mlp));
        const double demand =
            2.0 * static_cast<double>(model.mlpMacsPerSample()) *
            res.batch / 1e9;
        const double peak =
            cpu.cores * cpu.flopsPerCorePerSec() / 1e9;
        const double achieved = secs > 0.0 ? demand / secs : 0.0;
        v.utilization = achieved / peak;
        if (v.utilization > 0.3) {
            v.limiter = Bottleneck::Compute;
            v.note = "GEMMs run near the sustainable AVX2 rate";
        } else {
            v.limiter = Bottleneck::Dispatch;
            v.note = "inference-sized GEMMs are dispatch/ramp bound "
                     "far from peak";
        }
        out.push_back(v);
    }
    return out;
}

const char *
servingRegimeName(ServingRegime r)
{
    switch (r) {
      case ServingRegime::Underutilized:
        return "underutilized";
      case ServingRegime::Balanced:
        return "balanced";
      case ServingRegime::QueueBound:
        return "queue-bound";
      case ServingRegime::Overloaded:
        return "overloaded";
    }
    return "?";
}

ServingVerdict
analyzeServing(const ServingStats &stats, const ServingConfig &cfg)
{
    ServingVerdict v;
    v.utilization = stats.utilization;

    if (stats.dropRate() > 0.05 || stats.utilization > 0.95) {
        v.regime = ServingRegime::Overloaded;
        v.limiter = Bottleneck::Compute;
        v.note = "offered load exceeds aggregate capacity; add "
                 "workers, raise the coalescing limit, or shed load";
        return v;
    }

    // A batching window can manufacture queueing on an otherwise
    // idle fleet: the engine holds requests waiting for companions.
    if (cfg.coalesceWindowUs > 0.0 && stats.utilization < 0.5 &&
        stats.meanQueueUs >= 0.5 * cfg.coalesceWindowUs) {
        v.regime = ServingRegime::QueueBound;
        v.limiter = Bottleneck::Dispatch;
        v.note = "queueing is self-inflicted by the batching window; "
                 "shrink coalesceWindowUs at this arrival rate";
        return v;
    }

    if (stats.meanQueueUs > stats.meanServiceUs) {
        v.regime = ServingRegime::QueueBound;
        v.limiter = Bottleneck::Compute;
        v.note = "arrival bursts outrun short-term capacity; "
                 "coalescing amortizes per-dispatch cost";
        return v;
    }

    if (stats.utilization < 0.3) {
        v.regime = ServingRegime::Underutilized;
        v.limiter = Bottleneck::Dispatch;
        v.note = "capacity is mostly idle; latency is service time "
                 "and fewer workers would serve the same SLA";
        return v;
    }

    v.regime = ServingRegime::Balanced;
    v.limiter = Bottleneck::Compute;
    v.note = "healthy utilization with bounded queueing";
    return v;
}

} // namespace centaur
