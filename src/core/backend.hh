/**
 * @file
 * Composable stage-backend API.
 *
 * The paper's three design points are *compositions*: a sparse stage
 * (embedding gather + reduction) paired with a dense stage (MLPs +
 * feature interaction) across some interconnect. This header opens
 * that composition up: an EmbeddingBackend times the sparse stage, a
 * MlpBackend times the dense stage, and a SystemSpec names one
 * (embedding backend, MLP backend, placement) pairing. A string-spec
 * registry covers the paper's three points ("cpu", "cpu+gpu",
 * "cpu+fpga") plus pairings the paper never ran ("gpu", "gpu+fpga",
 * "fpga+fpga"); SystemBuilder (core/system_builder.hh) assembles any
 * spec into a runnable ComposedSystem.
 *
 * Stage backends do not own the node they run on: both interfaces
 * derive from FabricClient, and any stage segment that consumes a
 * node-shared resource (CPU cores, host DRAM bandwidth, a PCIe
 * direction) books its occupancy through FabricClient::charge()
 * against the node's Fabric (core/fabric.hh) instead of returning a
 * free-running latency. Without an attached fabric charge() is the
 * identity (ready + duration), so standalone systems time exactly
 * as before; with a shared fabric, co-located workers queue.
 */

#ifndef CENTAUR_CORE_BACKEND_HH
#define CENTAUR_CORE_BACKEND_HH

#include <string>
#include <vector>

#include "cachetier/cache_tier.hh"
#include "core/fabric.hh"
#include "ctrlplane/ctrl_spec.hh"
#include "core/result.hh"
#include "dlrm/reference_model.hh"
#include "dlrm/workload.hh"
#include "power/power_model.hh"
#include "sim/units.hh"

namespace centaur {

/** Who executes the sparse (embedding gather + reduce) stage. */
enum class EmbBackendKind : std::uint8_t
{
    CpuGather = 0, //!< SparseLengthsSum on the Xeon (cpu/gather_engine)
    GpuGather = 1, //!< gather kernels pulling host memory over PCIe
    EbStreamer = 2, //!< Centaur's in-package EB-Streamer (fpga/eb_streamer)
};

/** Who executes the dense (MLP + feature interaction) stage. */
enum class MlpBackendKind : std::uint8_t
{
    Cpu = 0,  //!< AVX2 GEMMs (cpu/gemm_model)
    Gpu = 1,  //!< V100 kernels (gpu/gpu_model)
    Fpga = 2, //!< PE arrays (fpga/mlp_unit, feature_interaction_unit)
};

/**
 * Where the MLP stage sits relative to the embedding stage's output -
 * this is what decides which interconnect hops an inference pays.
 */
enum class MlpPlacement : std::uint8_t
{
    Host = 0,     //!< same memory domain, no hop (CPU MLP)
    Package = 1,  //!< coherent in-package links (Centaur dense complex)
    PciePeer = 2, //!< discrete device, explicit PCIe hops each way
};

const char *embBackendName(EmbBackendKind k);
const char *mlpBackendName(MlpBackendKind k);
const char *mlpPlacementName(MlpPlacement p);

/**
 * One (embedding backend, MLP backend, placement) pairing, plus the
 * optional hot-row cache tier fronting its gathers
 * (cachetier/cache_tier.hh; disabled by default).
 */
struct SystemSpec
{
    EmbBackendKind emb = EmbBackendKind::CpuGather;
    MlpBackendKind mlp = MlpBackendKind::Cpu;
    MlpPlacement placement = MlpPlacement::Host;
    CacheTierConfig cache{};
    /** Closed-loop serving policy ("/ctrl:" part, ctrlplane/). */
    CtrlConfig ctrl{};

    bool
    operator==(const SystemSpec &o) const
    {
        return emb == o.emb && mlp == o.mlp &&
               placement == o.placement && cache == o.cache &&
               ctrl == o.ctrl;
    }
    bool operator!=(const SystemSpec &o) const { return !(*this == o); }
};

/** One registry row: a named, documented spec. */
struct SpecInfo
{
    const char *name;    //!< CLI / JSON spec string, e.g. "cpu+fpga"
    SystemSpec spec;
    const char *summary; //!< one-line description
    /**
     * Set when the spec is one of the paper's Table IV design
     * points; the composed system then reproduces the corresponding
     * monolithic class (and its wall-power figure) exactly.
     */
    bool isPaperDesignPoint;
    /**
     * The legacy DesignPoint this spec reports under: the paper
     * design point itself when isPaperDesignPoint, otherwise the
     * nearest anchor (by MLP backend) used for the `design` field
     * of records. Always valid.
     */
    DesignPoint paperDesignPoint;
};

/** All registered specs, paper design points first. */
const std::vector<SpecInfo> &specRegistry();

/** Registered spec strings in registry order. */
std::vector<std::string> registeredSpecs();

/**
 * Parse a spec string: a registered name, optionally followed by
 * suffix parts in any order, each at most once - a hot-row cache
 * (`/cache:<mb>[:<lru|lfu|slru>[:ghost]]`, cachetier/cache_tier.hh)
 * and a control-plane policy
 * (`/ctrl:<fixed|adaptive>[:hedge[:<q>]][:scale[:<lo>-<hi>]]`,
 * ctrlplane/ctrl_spec.hh). Returns false and fills @p error (when
 * non-null) with a message naming the offender and the known specs
 * (or the bad cache/ctrl token); true fills @p out.
 */
bool tryParseSpec(const std::string &name, SystemSpec *out,
                  std::string *error = nullptr);

/** Parse a registered spec string; fatal with the known specs on error. */
SystemSpec parseSpec(const std::string &name);

/**
 * Canonical string for @p spec: the registry name when registered,
 * otherwise a synthesized "emb:<e>/mlp:<m>@<placement>" form (such
 * specs can only come from assembling a SystemSpec by hand). An
 * enabled cache tier appends its canonical `/cache:...` part; an
 * enabled control plane appends its `/ctrl:...` part after it.
 */
std::string specName(const SystemSpec &spec);

/** The spec string of a legacy Table IV design point. */
const char *specForDesign(DesignPoint dp);

/**
 * Legacy DesignPoint anchor for a spec, used only where a report or
 * API predates specs (InferenceResult::design): paper design points
 * map to themselves, everything else anchors on its MLP backend.
 */
DesignPoint anchorDesignPoint(const SystemSpec &spec);

/**
 * Wall power of a composed system (watts). Paper design points
 * return the exact Table IV measurement via @p power; other specs
 * use the additive per-stage decomposition in PowerConfig.
 */
double specWatts(const SystemSpec &spec, const PowerConfig &power);

/**
 * When the embedding stage finishes, from the MLP stage's point of
 * view. The two timestamps differ only for backends that prefetch
 * dense features independently of the gather (the EB-Streamer's DNF
 * stream, the GPU's dense h2d copy) - that separation is what lets
 * an in-package MLP stage overlap its bottom MLP with the gather.
 */
struct EmbStageTiming
{
    Tick embReady = 0;   //!< reduced embedding vectors available
    Tick denseReady = 0; //!< dense features available
};

/**
 * Shared base of both stage-backend interfaces: the attachment
 * point for the node's resource fabric. SystemBuilder wires the
 * fabric (or leaves it null for a standalone, uncontended system);
 * backend implementations book shared-resource occupancy through
 * charge() at the point in their timeline where the traffic happens.
 */
class FabricClient
{
  public:
    /** Attach the node's shared fabric (nullptr = uncontended). */
    void setFabric(Fabric *fabric) { _fabric = fabric; }
    Fabric *fabric() const { return _fabric; }

  protected:
    /**
     * Occupy @p lanes lanes of node resource @p r for @p duration
     * ticks, earliest at @p ready, and return the completion tick.
     * Queueing delay behind other workers on the node accrues into
     * @p res.fabricWait. Without a fabric this is exactly
     * ready + duration - the free-running latency backends used to
     * return - so a null fabric reproduces legacy timing tick for
     * tick.
     */
    Tick charge(NodeResource r, Tick ready, Tick duration,
                InferenceResult &res, std::uint32_t lanes = 1) const;

  private:
    Fabric *_fabric = nullptr;
};

/**
 * Times the sparse stage: embedding gathers + reductions plus any
 * index/dense staging traffic. Implementations accumulate phase
 * ticks and cache statistics into the InferenceResult they are
 * handed; ComposedSystem stitches the stage timings together.
 */
class EmbeddingBackend : public FabricClient
{
  public:
    virtual ~EmbeddingBackend() = default;

    virtual EmbBackendKind kind() const = 0;

    /** Run the sparse stage for @p batch starting at @p start. */
    virtual EmbStageTiming run(const InferenceBatch &batch, Tick start,
                               InferenceResult &res) = 0;
};

/**
 * Times the dense stage: bottom MLP, feature interaction, top MLP,
 * sigmoid, plus any ingress/egress hops its placement implies.
 */
class MlpBackend : public FabricClient
{
  public:
    virtual ~MlpBackend() = default;

    virtual MlpBackendKind kind() const = 0;

    /**
     * Run the dense stage; @p in carries the embedding stage's
     * completion times. Returns the tick the result lands back in
     * host memory.
     */
    virtual Tick run(const InferenceBatch &batch,
                     const EmbStageTiming &in,
                     InferenceResult &res) = 0;

    /**
     * Final probability semantics: exact sigmoid by default; the
     * FPGA backend overrides with its piecewise-linear LUT.
     */
    virtual void probabilities(const ForwardResult &fwd,
                               InferenceResult &res) const;
};

} // namespace centaur

#endif // CENTAUR_CORE_BACKEND_HH
