/**
 * @file
 * The CPU-GPU baseline (Section V): embedding tables stay in CPU
 * memory (they exceed GPU HBM capacity), the CPU gathers and
 * reduces, then ships reduced embeddings + dense features over PCIe
 * to a V100 that runs the MLPs and interaction.
 *
 * @deprecated Kept as the reference implementation the composed
 * "cpu+gpu" preset is asserted against. New code should assemble
 * the equivalent system through SystemBuilder
 * (core/system_builder.hh):
 * `SystemBuilder().spec("cpu+gpu").model(cfg).build()`.
 */

#ifndef CENTAUR_CORE_CPU_GPU_SYSTEM_HH
#define CENTAUR_CORE_CPU_GPU_SYSTEM_HH

#include "cache/hierarchy.hh"
#include "core/system.hh"
#include "cpu/cpu_config.hh"
#include "cpu/gather_engine.hh"
#include "gpu/gpu_model.hh"
#include "mem/dram.hh"

namespace centaur {

/** CPU-GPU inference system. */
class CpuGpuSystem : public System
{
  public:
    explicit CpuGpuSystem(const DlrmConfig &cfg,
                          const CpuConfig &cpu = CpuConfig{},
                          const GpuConfig &gpu = GpuConfig{},
                          const DramConfig &dram = DramConfig{});

    DesignPoint design() const override { return DesignPoint::CpuGpu; }
    InferenceResult infer(const InferenceBatch &batch) override;

    const GpuModel &gpu() const { return _gpu; }

  private:
    CpuConfig _cpu;
    CacheHierarchy _hier;
    DramModel _dram;
    GatherEngine _gather;
    GpuModel _gpu;
};

} // namespace centaur

#endif // CENTAUR_CORE_CPU_GPU_SYSTEM_HH
