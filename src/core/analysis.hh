/**
 * @file
 * Bottleneck analysis: classifies what limits each phase of a
 * measured inference against the platform's configured ceilings
 * (link payload bandwidth, DRAM bandwidth, dense-array FLOPS,
 * round-trip latency, dispatch overhead). This is the question an
 * architect asks of every profile; the Discussion-section ablations
 * are parameter sweeps along exactly these verdicts.
 */

#ifndef CENTAUR_CORE_ANALYSIS_HH
#define CENTAUR_CORE_ANALYSIS_HH

#include <string>
#include <vector>

#include "core/result.hh"
#include "core/server.hh"
#include "cpu/cpu_config.hh"
#include "dlrm/model_config.hh"
#include "fpga/centaur_config.hh"
#include "mem/dram.hh"

namespace centaur {

/** What limits a phase. */
enum class Bottleneck : std::uint8_t
{
    LinkBandwidth,  //!< chiplet channel payload bandwidth
    LinkLatency,    //!< round trips / credit window, not bandwidth
    DramBandwidth,  //!< memory system throughput
    MemoryParallelism, //!< too few outstanding misses (CPU gathers)
    Compute,        //!< FLOPS of the executing engine
    Dispatch,       //!< per-operator software overhead
};

/** Analyzer verdict for one phase. */
struct PhaseVerdict
{
    Phase phase = Phase::Emb;
    Bottleneck limiter = Bottleneck::Compute;
    /** Achieved fraction of the limiting resource's ceiling. */
    double utilization = 0.0;
    std::string note;
};

/** Display name for a bottleneck class. */
const char *bottleneckName(Bottleneck b);

/**
 * Analyze a Centaur inference: EMB against the channel, MLP against
 * the PE arrays.
 */
std::vector<PhaseVerdict>
analyzeCentaur(const InferenceResult &res, const DlrmConfig &model,
               const CentaurConfig &acc,
               const DramConfig &dram = DramConfig{});

/**
 * Analyze a CPU-only inference: EMB against DRAM and per-thread
 * memory-level parallelism, MLP against AVX2 peak.
 */
std::vector<PhaseVerdict>
analyzeCpuOnly(const InferenceResult &res, const DlrmConfig &model,
               const CpuConfig &cpu = CpuConfig{},
               const DramConfig &dram = DramConfig{});

/** Operating regime of a serving-engine run. */
enum class ServingRegime : std::uint8_t
{
    Underutilized, //!< capacity mostly idle; latency is service time
    Balanced,      //!< healthy utilization with bounded queueing
    QueueBound,    //!< bursts outrun short-term capacity
    Overloaded,    //!< offered load exceeds aggregate capacity
};

/** Display name for a serving regime. */
const char *servingRegimeName(ServingRegime r);

/** Analyzer verdict for one serving run. */
struct ServingVerdict
{
    ServingRegime regime = ServingRegime::Balanced;
    Bottleneck limiter = Bottleneck::Compute;
    /** Aggregate worker utilization of the run. */
    double utilization = 0.0;
    std::string note;
};

/**
 * Classify what limits a serving run: aggregate capacity (add
 * workers), burst absorption (raise the coalescing limit), or a
 * self-inflicted batching window (dispatch overhead).
 */
ServingVerdict analyzeServing(const ServingStats &stats,
                              const ServingConfig &cfg);

} // namespace centaur

#endif // CENTAUR_CORE_ANALYSIS_HH
