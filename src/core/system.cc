#include "core/system.hh"

#include "core/backend.hh"
#include "core/compat.hh"
#include "core/system_builder.hh"
#include "sim/log.hh"

namespace centaur {

std::string
System::spec() const
{
    return specForDesign(design());
}

// Definition of the core/compat.hh legacy surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

std::unique_ptr<System>
makeSystem(DesignPoint dp, const DlrmConfig &cfg)
{
    // Thin shim over the composable backend API: each legacy design
    // point is a canned preset that reproduces the former monolithic
    // class exactly (tests/core/test_composed_system.cc).
    return SystemBuilder().spec(specForDesign(dp)).model(cfg).build();
}

#pragma GCC diagnostic pop

InferenceResult
measureInference(System &sys, WorkloadGenerator &gen, int warmup_runs)
{
    for (int i = 0; i < warmup_runs; ++i) {
        const InferenceBatch warm = gen.next();
        (void)sys.infer(warm);
    }
    const InferenceBatch measured = gen.next();
    return sys.infer(measured);
}

} // namespace centaur
