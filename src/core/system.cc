#include "core/system.hh"

#include "core/backend.hh"
#include "sim/log.hh"

namespace centaur {

std::string
System::spec() const
{
    return specForDesign(design());
}

InferenceResult
measureInference(System &sys, WorkloadGenerator &gen, int warmup_runs)
{
    for (int i = 0; i < warmup_runs; ++i) {
        const InferenceBatch warm = gen.next();
        (void)sys.infer(warm);
    }
    const InferenceBatch measured = gen.next();
    return sys.infer(measured);
}

} // namespace centaur
