#include "core/system.hh"

#include "core/centaur_system.hh"
#include "core/cpu_gpu_system.hh"
#include "core/cpu_only_system.hh"
#include "sim/log.hh"

namespace centaur {

std::unique_ptr<System>
makeSystem(DesignPoint dp, const DlrmConfig &cfg)
{
    switch (dp) {
      case DesignPoint::CpuOnly:
        return std::make_unique<CpuOnlySystem>(cfg);
      case DesignPoint::CpuGpu:
        return std::make_unique<CpuGpuSystem>(cfg);
      case DesignPoint::Centaur:
        return std::make_unique<CentaurSystem>(cfg);
    }
    panic("unknown design point");
}

InferenceResult
measureInference(System &sys, WorkloadGenerator &gen, int warmup_runs)
{
    for (int i = 0; i < warmup_runs; ++i) {
        const InferenceBatch warm = gen.next();
        (void)sys.infer(warm);
    }
    const InferenceBatch measured = gen.next();
    return sys.infer(measured);
}

} // namespace centaur
