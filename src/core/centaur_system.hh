/**
 * @file
 * The Centaur design point (Section IV): the package-integrated
 * CPU+FPGA. The EB-Streamer gathers embeddings straight out of CPU
 * memory over the coherent chiplet links while the dense complex
 * runs the bottom MLP on prefetched dense features; feature
 * interaction and the top MLP follow on the PE arrays, and a sigmoid
 * LUT finishes the probability, which streams back to CPU memory.
 *
 * @deprecated Kept as the reference implementation the composed
 * "cpu+fpga" preset is asserted against (and for the ablation
 * suites that poke its channel/IOMMU accessors). New code should
 * assemble the equivalent system through SystemBuilder
 * (core/system_builder.hh):
 * `SystemBuilder().spec("cpu+fpga").model(cfg).build()`.
 */

#ifndef CENTAUR_CORE_CENTAUR_SYSTEM_HH
#define CENTAUR_CORE_CENTAUR_SYSTEM_HH

#include "cache/hierarchy.hh"
#include "core/system.hh"
#include "fpga/centaur_config.hh"
#include "fpga/eb_streamer.hh"
#include "fpga/feature_interaction_unit.hh"
#include "fpga/mlp_unit.hh"
#include "fpga/resource_model.hh"
#include "fpga/sigmoid_unit.hh"
#include "interconnect/aggregate_link.hh"
#include "interconnect/iommu.hh"
#include "mem/dram.hh"

namespace centaur {

/** Centaur (CPU+FPGA) inference system. */
class CentaurSystem : public System
{
  public:
    explicit CentaurSystem(const DlrmConfig &cfg,
                           const CentaurConfig &acc = CentaurConfig{},
                           const DramConfig &dram = DramConfig{});

    DesignPoint design() const override { return DesignPoint::Centaur; }
    InferenceResult infer(const InferenceBatch &batch) override;

    const CentaurConfig &acceleratorConfig() const { return _acc; }
    ResourceModel resources() const { return ResourceModel(_acc); }
    EbStreamer &streamer() { return _streamer; }
    ChannelAggregate &channel() { return _channel; }
    Iommu &iommu() { return _iommu; }

  private:
    CentaurConfig _acc;
    CacheHierarchy _hier; //!< the (mostly idle) CPU's caches
    DramModel _dram;
    ChannelAggregate _channel;
    Iommu _iommu;
    EbStreamer _streamer;
    MlpUnit _mlpUnit;
    FeatureInteractionUnit _fiUnit;
    SigmoidUnit _sigmoid;
};

} // namespace centaur

#endif // CENTAUR_CORE_CENTAUR_SYSTEM_HH
