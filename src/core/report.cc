#include "core/report.hh"

#include "cachetier/cache_report.hh"
#include "ctrlplane/ctrl_report.hh"
#include "sim/units.hh"

namespace centaur {

Json
reportStamp(const std::string &kind, std::uint64_t seed)
{
    Json j = Json::object();
    j["schema_version"] = kReportSchemaVersion;
    j["schema_minor"] = kReportSchemaMinorVersion;
    j["kind"] = kind;
    j["seed"] = seed;
    return j;
}

Json
toJson(const DlrmConfig &cfg)
{
    Json j = Json::object();
    j["name"] = cfg.name;
    j["num_tables"] = cfg.numTables;
    j["lookups_per_table"] = cfg.lookupsPerTable;
    j["rows_per_table"] = cfg.rowsPerTable;
    j["embedding_dim"] = cfg.embeddingDim;
    j["dense_dim"] = cfg.denseDim;
    j["table_bytes"] = cfg.tableBytes();
    j["total_table_bytes"] = cfg.totalTableBytes();
    j["mlp_param_bytes"] = cfg.mlpParamBytes();
    j["interaction_dim"] = cfg.interactionDim();
    return j;
}

Json
toJson(const LayerStats &ls)
{
    Json j = Json::object();
    j["instructions"] = ls.instructions;
    j["llc_accesses"] = ls.llcAccesses;
    j["llc_misses"] = ls.llcMisses;
    j["llc_miss_rate"] = ls.llcMissRate();
    j["mpki"] = ls.mpki();
    return j;
}

Json
toJson(const InferenceResult &res)
{
    Json j = Json::object();
    j["design"] = designPointName(res.design);
    j["spec"] = res.spec;
    j["batch"] = res.batch;
    j["latency_us"] = usFromTicks(res.latency());
    j["throughput_inf_per_sec"] = res.inferencesPerSec();

    Json phase_us = Json::object();
    Json phase_share = Json::object();
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        const Phase p = static_cast<Phase>(i);
        phase_us[phaseName(p)] = usFromTicks(res.phaseTicks(p));
        phase_share[phaseName(p)] = res.phaseShare(p);
    }
    j["phase_us"] = phase_us;
    j["phase_share"] = phase_share;

    j["effective_emb_gbps"] = res.effectiveEmbGBps;
    j["fabric_wait_us"] = usFromTicks(res.fabricWait);
    j["emb"] = toJson(res.emb);
    j["mlp"] = toJson(res.mlp);
    j["power_watts"] = res.powerWatts;
    j["energy_joules"] = res.energyJoules;
    j["efficiency_inf_per_joule"] = res.efficiency();
    j["num_probabilities"] = res.probabilities.size();
    return j;
}

Json
toJson(const SweepEntry &entry)
{
    Json j = reportStamp("sweep_entry", entry.seed);
    j["model"] = entry.modelName;
    j["spec"] = entry.spec;
    j["workload"] = entry.workload;
    j["preset"] = entry.preset;
    j["batch"] = entry.batch;
    j["result"] = toJson(entry.result);
    return j;
}

Json
toJson(const WorkerStats &ws)
{
    Json j = Json::object();
    j["spec"] = ws.spec;
    j["served"] = ws.served;
    j["dispatches"] = ws.dispatches;
    j["busy_us"] = ws.busyUs;
    j["utilization"] = ws.utilization;
    j["energy_joules"] = ws.energyJoules;
    j["mean_coalesced"] = ws.meanCoalesced();
    j["fabric_wait_us"] = ws.fabricWaitUs;
    j["cache_hits"] = ws.cacheHits;
    j["cache_misses"] = ws.cacheMisses;
    j["cache_saved_us"] = ws.cacheSavedUs;
    return j;
}

Json
toJson(const FabricResourceStats &fs)
{
    Json j = Json::object();
    j["resource"] = fs.resource;
    j["lanes"] = fs.lanes;
    j["grants"] = fs.grants;
    j["busy_us"] = fs.busyUs;
    j["wait_us"] = fs.waitUs;
    j["utilization"] = fs.utilization;
    return j;
}

Json
toJson(const ServingStats &stats)
{
    Json j = Json::object();
    j["offered"] = stats.offered;
    j["served"] = stats.served;
    j["dropped_queue_full"] = stats.droppedQueueFull;
    // Count of requests dropped by the queue-timeout policy, not a
    // duration. centaur-lint: allow(unit-suffix)
    j["dropped_timeout"] = stats.droppedTimeout;
    // Arrival-state attribution of sheds (burst workloads only);
    // counts, not durations. centaur-lint: allow(unit-suffix)
    j["dropped_burst_arrivals"] = stats.droppedBurstArrivals;
    // centaur-lint: allow(unit-suffix)
    j["dropped_idle_arrivals"] = stats.droppedIdleArrivals;
    j["drop_rate"] = stats.dropRate();
    j["mean_service_us"] = stats.meanServiceUs;
    j["mean_queue_us"] = stats.meanQueueUs;
    j["mean_latency_us"] = stats.meanLatencyUs;
    j["p50_us"] = stats.p50Us;
    j["p95_us"] = stats.p95Us;
    j["p99_us"] = stats.p99Us;
    j["p999_us"] = stats.p999Us;
    j["max_latency_us"] = stats.maxLatencyUs;
    j["latency_overflow"] = stats.latencyOverflow;
    j["throughput_rps"] = stats.throughputRps;
    j["offered_rps"] = stats.offeredRps;
    j["utilization"] = stats.utilization;
    j["energy_joules"] = stats.energyJoules;
    j["idle_energy_joules"] = stats.idleEnergyJoules;
    j["joules_per_query"] = stats.joulesPerQuery;
    j["dispatches"] = stats.dispatches;
    j["mean_coalesced_requests"] = stats.meanCoalescedRequests;
    j["sla_target_us"] = stats.slaTargetUs;
    j["sla_hit_rate"] = stats.slaHitRate;
    Json per_class = Json::array();
    for (const auto &cs : stats.perClass)
        per_class.push(toJson(cs));
    j["per_class"] = per_class;
    j["ctrl"] = toJson(stats.ctrl);
    Json workers = Json::array();
    for (const auto &w : stats.perWorker)
        workers.push(toJson(w));
    j["per_worker"] = workers;
    j["fabric_wait_us"] = stats.fabricWaitUs;
    Json fabric = Json::array();
    for (const auto &fs : stats.fabric)
        fabric.push(toJson(fs));
    j["fabric"] = fabric;
    j["cache"] = toJson(stats.cache);
    return j;
}

Json
toJson(const ServingSweepEntry &entry)
{
    Json j = reportStamp("serving_sweep_entry", entry.seed);
    j["model"] = entry.modelName;
    j["spec"] = entry.spec;
    j["workload"] = entry.workload;
    j["preset"] = entry.preset;
    j["workers"] = entry.workers;
    j["max_coalesced_batch"] = entry.maxCoalescedBatch;
    j["arrival_rate_per_sec"] = entry.arrivalRatePerSec;
    j["stats"] = toJson(entry.stats);
    return j;
}

Json
toJson(const ServingConfig &cfg)
{
    Json j = Json::object();
    j["arrival_rate_per_sec"] = cfg.arrivalRatePerSec;
    j["batch_per_request"] = cfg.batchPerRequest;
    j["requests"] = cfg.requests;
    j["seed"] = cfg.seed;
    j["dist"] = indexDistributionName(cfg.dist);
    j["zipf_skew"] = cfg.zipfSkew;
    j["trace_path"] = cfg.tracePath;
    j["arrival"] = arrivalProcessName(cfg.arrival);
    j["burst_factor"] = cfg.burstFactor;
    j["diurnal_amplitude"] = cfg.diurnalAmplitude;
    j["diurnal_period_sec"] = cfg.diurnalPeriodSec;
    Json slo_classes = Json::array();
    for (const SloClass &cls : cfg.sloClasses) {
        Json c = Json::object();
        c["name"] = cls.name;
        c["p99_target_us"] = cls.p99TargetUs;
        slo_classes.push(c);
    }
    j["slo_classes"] = slo_classes;
    j["ctrl"] = ctrlPartName(cfg.ctrl);
    j["workers"] = cfg.workers;
    Json specs = Json::array();
    for (const std::string &s : cfg.workerSpecs)
        specs.push(s);
    j["worker_specs"] = specs;
    j["max_coalesced_batch"] = cfg.maxCoalescedBatch;
    j["coalesce_window_us"] = cfg.coalesceWindowUs;
    j["max_queue_depth"] = cfg.maxQueueDepth;
    j["queue_timeout_us"] = cfg.queueTimeoutUs;
    j["sla_target_us"] = cfg.slaTargetUs;
    j["contend"] = cfg.contend;
    Json fabric = Json::object();
    fabric["cpu_cores"] = cfg.fabricCfg.cpuCores;
    fabric["host_dram_gbps"] = cfg.fabricCfg.hostDramGBps;
    fabric["pcie_gbps"] = cfg.fabricCfg.pcieGBps;
    j["fabric_cfg"] = fabric;
    return j;
}

Json
toJson(const PhaseVerdict &verdict)
{
    Json j = Json::object();
    j["phase"] = phaseName(verdict.phase);
    j["limiter"] = bottleneckName(verdict.limiter);
    j["utilization"] = verdict.utilization;
    j["note"] = verdict.note;
    return j;
}

Json
toJson(const ServingVerdict &verdict)
{
    Json j = Json::object();
    j["regime"] = servingRegimeName(verdict.regime);
    j["limiter"] = bottleneckName(verdict.limiter);
    j["utilization"] = verdict.utilization;
    j["note"] = verdict.note;
    return j;
}

} // namespace centaur
