#include "core/centaur_system.hh"

#include <algorithm>

namespace centaur {

CentaurSystem::CentaurSystem(const DlrmConfig &cfg,
                             const CentaurConfig &acc,
                             const DramConfig &dram)
    : System(cfg), _acc(acc), _hier(broadwellHierarchyConfig()),
      _dram(dram), _channel(acc.channel), _iommu(acc.iommu),
      _streamer(_acc, _channel, _iommu, _hier.llc(), _dram),
      _mlpUnit(_acc), _fiUnit(_acc), _sigmoid(_acc)
{
    // Boot-time software interface (Section IV-E): the CPU programs
    // the base pointers over MMIO once; MLP weights are uploaded to
    // the FPGA weight SRAM and stay persistent, so neither is on the
    // per-inference critical path.
    const MemoryLayout &layout = _model.layout();
    auto &regs = _streamer.bpregs();
    regs.setIndexArray(layout.indexArrayBase);
    regs.setDenseFeatures(layout.denseFeatureBase);
    regs.setMlpWeights(layout.mlpWeightBase);
    regs.setOutput(layout.outputBase);
    regs.setTableBases(layout.tableBases);
}

InferenceResult
CentaurSystem::infer(const InferenceBatch &batch)
{
    const DlrmConfig &cfg = config();
    InferenceResult res;
    res.design = design();
    res.batch = batch.batch;
    res.start = _now;

    // ----- MMIO pointer updates + doorbell (Other) -----
    const Tick t_mmio =
        _now + _acc.mmioWritesPerInference *
                   ticksFromNs(_acc.mmioWriteNs);

    // ----- DNF: dense feature fetch (overlaps IDX/EMB) -----
    const std::uint64_t dnf_bytes =
        static_cast<std::uint64_t>(batch.batch) * cfg.denseDim * 4;
    const StreamResult dnf = _streamer.streamFromMemory(
        _streamer.bpregs().denseFeatures(), dnf_bytes, t_mmio);

    // ----- IDX: sparse index array fetch -----
    const std::uint64_t idx_bytes = batch.totalLookups() * 4;
    const StreamResult idx = _streamer.streamFromMemory(
        _streamer.bpregs().indexArray(), idx_bytes, t_mmio);

    // ----- EMB: hardware gathers + on-the-fly reductions -----
    const EbGatherResult g = _streamer.gather(_model, batch, idx.end);
    res.effectiveEmbGBps = g.effectiveGBps();

    // ----- bottom MLP (overlaps EMB; needs only dense features) ----
    const DenseExecResult bot = _mlpUnit.mlpStack(
        cfg.bottomLayerDims(), batch.batch, dnf.end);

    // ----- feature interaction on the FI PEs -----
    const Tick fi_start = std::max(g.end, bot.end);
    const DenseExecResult fi = _fiUnit.run(
        batch.batch, cfg.numTables + 1, cfg.embeddingDim, fi_start);

    // ----- top MLP -----
    const DenseExecResult top = _mlpUnit.mlpStack(
        cfg.topLayerDims(), batch.batch, fi.end);

    // ----- sigmoid + writeback (Other) -----
    const Tick sig_end = _sigmoid.time(batch.batch, top.end);
    const StreamResult wb = _streamer.writeback(
        _streamer.bpregs().output(),
        static_cast<std::uint64_t>(batch.batch) * 4, sig_end);

    // ----- phase accounting (segments chain to the total) -----
    const Tick mlp_start = std::max(g.end, dnf.end);
    res.phase[static_cast<std::size_t>(Phase::Idx)] = idx.end - t_mmio;
    res.phase[static_cast<std::size_t>(Phase::Emb)] = g.end - idx.end;
    res.phase[static_cast<std::size_t>(Phase::Dnf)] =
        dnf.end > g.end ? dnf.end - g.end : 0;
    res.phase[static_cast<std::size_t>(Phase::Mlp)] =
        top.end - mlp_start;
    res.phase[static_cast<std::size_t>(Phase::Other)] =
        (t_mmio - _now) + (sig_end - top.end) + (wb.end - sig_end);

    res.end = wb.end;
    _now = wb.end;

    // ----- functional result: exact dense path, LUT sigmoid -----
    const ForwardResult fwd = _model.forward(batch);
    res.probabilities.resize(fwd.logits.size());
    for (std::size_t i = 0; i < fwd.logits.size(); ++i)
        res.probabilities[i] = _sigmoid.eval(fwd.logits[i]);

    finalize(res);
    return res;
}

} // namespace centaur
