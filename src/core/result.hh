/**
 * @file
 * End-to-end inference result: latency, the paper's phase breakdown
 * (IDX / EMB / DNF / MLP / Other, Figures 5 and 14), effective
 * embedding throughput (Figures 7 and 13), per-layer cache
 * statistics (Figure 6), functional outputs and energy (Figure 15).
 */

#ifndef CENTAUR_CORE_RESULT_HH
#define CENTAUR_CORE_RESULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "power/power_model.hh"
#include "sim/units.hh"

namespace centaur {

/** Execution phases used in the latency breakdowns. */
enum class Phase : std::uint8_t
{
    Idx = 0,   //!< CPU->FPGA sparse index fetch (Centaur only)
    Emb = 1,   //!< embedding gathers + reductions
    Dnf = 2,   //!< dense feature fetch (Centaur only)
    Mlp = 3,   //!< bottom + top MLP execution
    Other = 4, //!< interaction, sigmoid, glue, setup, writeback
};

constexpr std::size_t kNumPhases = 5;

/** Phase display name. */
const char *phaseName(Phase p);

/** Cache/instruction statistics attributed to one layer type. */
struct LayerStats
{
    std::uint64_t instructions = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;

    double
    llcMissRate() const
    {
        return llcAccesses ? static_cast<double>(llcMisses) /
                                 static_cast<double>(llcAccesses)
                           : 0.0;
    }

    double
    mpki() const
    {
        return instructions
                   ? static_cast<double>(llcMisses) * 1000.0 /
                         static_cast<double>(instructions)
                   : 0.0;
    }
};

/** Everything measured about one end-to-end inference. */
struct InferenceResult
{
    /**
     * Legacy design-point anchor. For composed systems beyond the
     * paper's three points this holds the nearest anchor (by MLP
     * backend); `spec` is the authoritative identity.
     */
    DesignPoint design = DesignPoint::CpuOnly;
    /** Backend-composition spec string (core/backend.hh registry). */
    std::string spec;
    std::uint32_t batch = 0;

    Tick start = 0;
    Tick end = 0;
    std::array<Tick, kNumPhases> phase{};

    /** Effective embedding gather throughput (GB/s). */
    double effectiveEmbGBps = 0.0;

    /**
     * Ticks spent queued behind other workers on the node's shared
     * resources (core/fabric.hh), summed per resource grant. Zero
     * without a fabric or on an uncontended node; under contention
     * the stalls also extend the phase the delayed segment belongs
     * to, so phases still sum to the latency.
     */
    Tick fabricWait = 0;

    /**
     * Hot-row cache tier outcome of this inference (zero without an
     * attached tier, cachetier/cache_tier.hh): lookups served from
     * the tier, lookups that went to the memory system, and the
     * fabric/NIC occupancy the hits avoided.
     */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    Tick cacheSavedTicks = 0;

    LayerStats emb;
    LayerStats mlp;

    /** Functional outputs (event probabilities per sample). */
    std::vector<float> probabilities;

    double powerWatts = 0.0;
    double energyJoules = 0.0;

    Tick latency() const { return end - start; }

    Tick phaseTicks(Phase p) const
    {
        return phase[static_cast<std::size_t>(p)];
    }

    double
    phaseShare(Phase p) const
    {
        const Tick total = latency();
        return total ? static_cast<double>(phaseTicks(p)) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Throughput in inferences per second. */
    double
    inferencesPerSec() const
    {
        const double secs = secFromTicks(latency());
        return secs > 0.0 ? 1.0 / secs : 0.0;
    }

    /** Energy efficiency in inferences per joule. */
    double
    efficiency() const
    {
        return energyJoules > 0.0 ? 1.0 / energyJoules : 0.0;
    }
};

} // namespace centaur

#endif // CENTAUR_CORE_RESULT_HH
