/**
 * @file
 * The HARPv2 CPU<->FPGA channel: one coherent UPI link plus two PCIe
 * links, exposed as a single logical pipe with least-loaded steering.
 * Raw aggregate bandwidth is 28.8 GB/s per direction (2 x 8 GB/s PCIe
 * + 12.8 GB/s UPI), effective payload bandwidth about 17-18 GB/s
 * after per-packet protocol overhead - both as quoted in the paper.
 */

#ifndef CENTAUR_INTERCONNECT_AGGREGATE_LINK_HH
#define CENTAUR_INTERCONNECT_AGGREGATE_LINK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "interconnect/link.hh"
#include "sim/units.hh"

namespace centaur {

/** Parameters for the aggregated CPU<->FPGA channel. */
struct ChannelConfig
{
    std::vector<LinkConfig> links;
    /**
     * Maximum in-flight 64 B read responses the FPGA can track
     * (limited by AFU tag space / credit depth on HARPv2).
     */
    std::uint32_t maxOutstandingLines = 176;

    /** HARPv2-like default: 1 x UPI + 2 x PCIe gen3 x8. */
    static ChannelConfig harpV2();

    double rawBandwidthGBps() const;
    double effectiveBandwidthGBps() const;
};

/**
 * Least-loaded multi-link channel.
 *
 * Callers time individual transfers; the channel picks the link whose
 * relevant direction frees earliest, which matches HARPv2's VA
 * (virtual-auto) channel mapping behaviour.
 */
class ChannelAggregate
{
  public:
    explicit ChannelAggregate(const ChannelConfig &cfg);

    /** Time a transfer of @p payload_bytes, earliest at @p ready. */
    LinkTransfer transfer(std::uint64_t payload_bytes, Tick ready,
                          LinkDir dir);

    /** Earliest tick any link frees in direction @p dir. */
    Tick earliestFree(LinkDir dir) const;

    std::uint64_t payloadBytes(LinkDir dir) const;
    std::uint64_t wireBytes(LinkDir dir) const;

    std::uint32_t maxOutstandingLines() const
    {
        return _cfg.maxOutstandingLines;
    }

    const ChannelConfig &config() const { return _cfg; }
    std::size_t linkCount() const { return _links.size(); }
    const Link &link(std::size_t i) const { return *_links[i]; }

    void reset();

  private:
    ChannelConfig _cfg;
    std::vector<std::unique_ptr<Link>> _links;
};

} // namespace centaur

#endif // CENTAUR_INTERCONNECT_AGGREGATE_LINK_HH
