/**
 * @file
 * FPGA-side IOMMU/TLB model (Section IV-E).
 *
 * HARPv2 gives the AFU a unified virtual address space; base pointers
 * arrive over MMIO as virtual addresses and the FPGA-side IOMMU
 * translates each access. With 2 MB pages (the HARP runtime pins
 * hugepages) the TLB covers multi-GB tables with modest entry counts,
 * so translation is rarely a bottleneck - but misses cost a page walk
 * through CPU memory and the model charges them faithfully.
 */

#ifndef CENTAUR_INTERCONNECT_IOMMU_HH
#define CENTAUR_INTERCONNECT_IOMMU_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/units.hh"

namespace centaur {

/** IOMMU/TLB parameters. */
struct IommuConfig
{
    /** 2048 x 2 MB pages = 4 GB of reach, covering the largest
     *  Table I model (3.2 GB) as HARP's pinned-hugepage VTP does. */
    std::uint32_t tlbEntries = 2048;
    std::uint64_t pageBytes = 2 * kMiB;
    double hitLatencyNs = 4.0;
    double walkLatencyNs = 250.0; //!< page-table walk via CPU memory
};

/** Translation outcome. */
struct TranslationResult
{
    Addr physical = 0;
    Tick latency = 0;
    bool tlbHit = false;
};

/**
 * A fully-associative LRU TLB with an identity page mapping (the
 * simulated address space is flat; what matters is hit/miss timing).
 */
class Iommu
{
  public:
    explicit Iommu(const IommuConfig &cfg = IommuConfig{});

    TranslationResult translate(Addr virt);

    /** Pre-install the translation covering @p virt (warmup). */
    void preload(Addr virt);

    void flush();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    double
    hitRate() const
    {
        const std::uint64_t total = _hits + _misses;
        return total ? static_cast<double>(_hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    const IommuConfig &config() const { return _cfg; }

  private:
    void touch(std::uint64_t page);
    void install(std::uint64_t page);

    IommuConfig _cfg;
    Tick _hitLatency;
    Tick _walkLatency;
    // page -> position in LRU list
    std::list<std::uint64_t> _lru; //!< front = most recent
    // Audited for the determinism contract: _entries is only ever
    // probed point-wise (find/erase/operator[]/clear) - never
    // iterated. Every eviction decision reads _lru.back(), a
    // std::list ordered purely by install/touch recency, and the
    // emitted stats are the scalar _hits/_misses counters, so no
    // observable output depends on hash-bucket iteration order.
    // centaur-lint: allow(ordered-emission)
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        _entries;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace centaur

#endif // CENTAUR_INTERCONNECT_IOMMU_HH
