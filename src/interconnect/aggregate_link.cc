#include "interconnect/aggregate_link.hh"

#include <algorithm>
#include <limits>

#include "sim/log.hh"

namespace centaur {

ChannelConfig
ChannelConfig::harpV2()
{
    ChannelConfig cfg;
    // One cache-coherent UPI link: lower latency, 12.8 GB/s raw.
    cfg.links.push_back(LinkConfig{"upi", 12.8, 300.0, 40, 64});
    // Two PCIe gen3 x8 links: 8 GB/s raw each, higher latency.
    cfg.links.push_back(LinkConfig{"pcie0", 8.0, 420.0, 40, 64});
    cfg.links.push_back(LinkConfig{"pcie1", 8.0, 420.0, 40, 64});
    cfg.maxOutstandingLines = 176;
    return cfg;
}

double
ChannelConfig::rawBandwidthGBps() const
{
    double sum = 0.0;
    for (const auto &l : links)
        sum += l.bandwidthGBps;
    return sum;
}

double
ChannelConfig::effectiveBandwidthGBps() const
{
    double sum = 0.0;
    for (const auto &l : links)
        sum += l.effectiveBandwidthGBps();
    return sum;
}

ChannelAggregate::ChannelAggregate(const ChannelConfig &cfg) : _cfg(cfg)
{
    if (cfg.links.empty())
        fatal("channel aggregate needs at least one link");
    for (const auto &lc : cfg.links)
        _links.push_back(std::make_unique<Link>(lc));
}

LinkTransfer
ChannelAggregate::transfer(std::uint64_t payload_bytes, Tick ready,
                           LinkDir dir)
{
    // Steer to the link that can start (and roughly finish) earliest:
    // least busy first, breaking ties toward higher bandwidth.
    std::size_t best = 0;
    Tick best_start = std::numeric_limits<Tick>::max();
    double best_bw = 0.0;
    for (std::size_t i = 0; i < _links.size(); ++i) {
        const Tick start =
            std::max(ready, _links[i]->busyUntil(dir));
        const double bw = _links[i]->config().bandwidthGBps;
        if (start < best_start ||
            (start == best_start && bw > best_bw)) {
            best = i;
            best_start = start;
            best_bw = bw;
        }
    }
    return _links[best]->transfer(payload_bytes, ready, dir);
}

Tick
ChannelAggregate::earliestFree(LinkDir dir) const
{
    Tick t = std::numeric_limits<Tick>::max();
    for (const auto &l : _links)
        t = std::min(t, l->busyUntil(dir));
    return t;
}

std::uint64_t
ChannelAggregate::payloadBytes(LinkDir dir) const
{
    std::uint64_t sum = 0;
    for (const auto &l : _links)
        sum += l->payloadBytes(dir);
    return sum;
}

std::uint64_t
ChannelAggregate::wireBytes(LinkDir dir) const
{
    std::uint64_t sum = 0;
    for (const auto &l : _links)
        sum += l->wireBytes(dir);
    return sum;
}

void
ChannelAggregate::reset()
{
    for (auto &l : _links)
        l->reset();
}

} // namespace centaur
