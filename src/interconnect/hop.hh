/**
 * @file
 * An explicit point-to-point interconnect hop: the serialized
 * transfer a composed system pays whenever a stage's output crosses
 * to a discrete device (PCIe) instead of staying in-package
 * (CCI-P/UPI, modeled by interconnect/aggregate_link.hh). Keeping
 * hops as first-class objects is what makes the cost of each
 * backend placement visible in the stage-backend API.
 */

#ifndef CENTAUR_INTERCONNECT_HOP_HH
#define CENTAUR_INTERCONNECT_HOP_HH

#include <cstdint>

#include "sim/units.hh"

namespace centaur {

/** One direction-agnostic serialized link hop. */
struct InterconnectHop
{
    const char *name = "pcie3x16";
    /** Effective payload bandwidth (decimal GB/s). */
    double gbps = 12.0;
    /** Software + DMA setup cost per transfer (microseconds). */
    double setupUs = 5.0;

    /** Software + DMA setup preceding the wire time; per-worker CPU
     *  work that does not occupy a shared PCIe direction. */
    Tick setupTicks() const { return ticksFromUs(setupUs); }

    /** Wire occupancy of a @p bytes transfer (serialization only) -
     *  the part a shared PCIe direction (core/fabric.hh) is held for. */
    Tick
    wireTicks(std::uint64_t bytes) const
    {
        return serializationTicks(bytes, gbps);
    }

    /** Completion tick of a @p bytes transfer starting at @p start. */
    Tick
    transfer(std::uint64_t bytes, Tick start) const
    {
        return start + setupTicks() + wireTicks(bytes);
    }
};

} // namespace centaur

#endif // CENTAUR_INTERCONNECT_HOP_HH
