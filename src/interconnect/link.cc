#include "interconnect/link.hh"

#include <algorithm>

#include "sim/log.hh"

namespace centaur {

Link::Link(const LinkConfig &cfg)
    : _cfg(cfg), _latency(ticksFromNs(cfg.latencyNs)),
      _pipe{ResourceClock(cfg.name + ".c2f"),
            ResourceClock(cfg.name + ".f2c")}
{
    if (cfg.bandwidthGBps <= 0.0)
        fatal("link '", cfg.name, "' needs positive bandwidth");
    if (cfg.maxPayloadBytes == 0)
        fatal("link '", cfg.name, "' needs a nonzero max payload");
}

LinkTransfer
Link::transfer(std::uint64_t payload_bytes, Tick ready, LinkDir dir)
{
    const int d = static_cast<int>(dir);
    LinkTransfer out;
    if (payload_bytes == 0) {
        out.firstByte = out.lastByte = ready + _latency;
        return out;
    }

    const std::uint64_t packets =
        (payload_bytes + _cfg.maxPayloadBytes - 1) / _cfg.maxPayloadBytes;
    const std::uint64_t wire =
        payload_bytes + packets * _cfg.headerBytes;

    const Tick serialization =
        serializationTicks(wire, _cfg.bandwidthGBps);
    const Tick start = _pipe[d].acquire(ready, serialization).start;

    _payloadBytes[d] += payload_bytes;
    _wireBytes[d] += wire;

    // First packet lands after its own serialization plus latency;
    // the pipe streams so the last byte follows serialization of all.
    const Tick first_pkt = serializationTicks(
        std::min<std::uint64_t>(payload_bytes, _cfg.maxPayloadBytes) +
            _cfg.headerBytes,
        _cfg.bandwidthGBps);
    out.firstByte = start + first_pkt + _latency;
    out.lastByte = start + serialization + _latency;
    return out;
}

void
Link::reset()
{
    for (int d = 0; d < 2; ++d) {
        _pipe[d].reset();
        _payloadBytes[d] = 0;
        _wireBytes[d] = 0;
    }
}

} // namespace centaur
