#include "interconnect/iommu.hh"

namespace centaur {

Iommu::Iommu(const IommuConfig &cfg)
    : _cfg(cfg), _hitLatency(ticksFromNs(cfg.hitLatencyNs)),
      _walkLatency(ticksFromNs(cfg.walkLatencyNs))
{
}

TranslationResult
Iommu::translate(Addr virt)
{
    const std::uint64_t page = virt / _cfg.pageBytes;
    TranslationResult res;
    res.physical = virt; // identity map in the simulated space
    auto it = _entries.find(page);
    if (it != _entries.end()) {
        ++_hits;
        res.tlbHit = true;
        res.latency = _hitLatency;
        touch(page);
    } else {
        ++_misses;
        res.tlbHit = false;
        res.latency = _hitLatency + _walkLatency;
        install(page);
    }
    return res;
}

void
Iommu::preload(Addr virt)
{
    const std::uint64_t page = virt / _cfg.pageBytes;
    if (_entries.find(page) == _entries.end())
        install(page);
}

void
Iommu::flush()
{
    _lru.clear();
    _entries.clear();
}

void
Iommu::touch(std::uint64_t page)
{
    auto it = _entries.find(page);
    _lru.erase(it->second);
    _lru.push_front(page);
    it->second = _lru.begin();
}

void
Iommu::install(std::uint64_t page)
{
    if (_entries.size() >= _cfg.tlbEntries && !_lru.empty()) {
        _entries.erase(_lru.back());
        _lru.pop_back();
    }
    _lru.push_front(page);
    _entries[page] = _lru.begin();
}

} // namespace centaur
