/**
 * @file
 * Point-to-point chiplet link model (UPI or PCIe lane bundle).
 *
 * A link is a full-duplex pipe with a raw per-direction bandwidth, a
 * propagation + protocol latency, and a fixed per-packet header that
 * models flit/TLP framing and coherence-protocol overhead. Payloads
 * larger than the maximum payload size are segmented. Effective
 * payload bandwidth is therefore raw * payload/(payload+header), which
 * is how HARPv2's 28.8 GB/s theoretical turns into the paper's
 * 17-18 GB/s effective (Section VI-B).
 */

#ifndef CENTAUR_INTERCONNECT_LINK_HH
#define CENTAUR_INTERCONNECT_LINK_HH

#include <cstdint>
#include <string>

#include "sim/resource.hh"
#include "sim/units.hh"

namespace centaur {

/** Transfer direction relative to the CPU. */
enum class LinkDir : std::uint8_t
{
    CpuToFpga = 0,
    FpgaToCpu = 1,
};

/** Static parameters of one physical link. */
struct LinkConfig
{
    std::string name = "link";
    double bandwidthGBps = 8.0; //!< raw, per direction
    double latencyNs = 350.0;   //!< propagation + protocol stack
    std::uint32_t headerBytes = 40;
    std::uint32_t maxPayloadBytes = 64;

    /** Fraction of raw bandwidth available to payload bytes. */
    double
    payloadEfficiency() const
    {
        return static_cast<double>(maxPayloadBytes) /
               static_cast<double>(maxPayloadBytes + headerBytes);
    }

    double
    effectiveBandwidthGBps() const
    {
        return bandwidthGBps * payloadEfficiency();
    }
};

/** Completion information for one link transfer. */
struct LinkTransfer
{
    Tick firstByte = 0; //!< arrival of the first payload byte
    Tick lastByte = 0;  //!< arrival of the last payload byte
};

/**
 * One full-duplex link with independent per-direction serialization.
 */
class Link
{
  public:
    explicit Link(const LinkConfig &cfg);

    /**
     * Send @p payload_bytes in direction @p dir, earliest at @p ready.
     * Pipelined: latency is charged once, serialization per packet.
     */
    LinkTransfer transfer(std::uint64_t payload_bytes, Tick ready,
                          LinkDir dir);

    /** Earliest tick the @p dir pipe could accept a new packet. */
    Tick busyUntil(LinkDir dir) const
    {
        return _pipe[static_cast<int>(dir)].busyUntil();
    }

    /** The @p dir serialization pipe (utilization/wait statistics). */
    const ResourceClock &pipe(LinkDir dir) const
    {
        return _pipe[static_cast<int>(dir)];
    }

    std::uint64_t payloadBytes(LinkDir dir) const
    {
        return _payloadBytes[static_cast<int>(dir)];
    }

    std::uint64_t wireBytes(LinkDir dir) const
    {
        return _wireBytes[static_cast<int>(dir)];
    }

    void reset();

    const LinkConfig &config() const { return _cfg; }

  private:
    LinkConfig _cfg;
    Tick _latency;
    ResourceClock _pipe[2];
    std::uint64_t _payloadBytes[2] = {0, 0};
    std::uint64_t _wireBytes[2] = {0, 0};
};

} // namespace centaur

#endif // CENTAUR_INTERCONNECT_LINK_HH
