#include "sim/event_queue.hh"

#include <atomic>

#include "sim/log.hh"

namespace centaur {

namespace {
/** Atomic because bench suites run sweep points on --jobs threads;
 *  the total is the same at any job count. */
std::atomic<std::uint64_t> global_sim_events{0};

constexpr std::size_t kArenaChunkBytes = 16384;
} // namespace

std::uint64_t
globalSimEvents()
{
    return global_sim_events.load(std::memory_order_relaxed);
}

void
addGlobalSimEvents(std::uint64_t n)
{
    global_sim_events.fetch_add(n, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// CallbackArena
// ---------------------------------------------------------------------

void *
CallbackArena::allocate(std::size_t size, std::size_t align)
{
    for (;;) {
        if (_chunk < _chunks.size()) {
            Chunk &c = _chunks[_chunk];
            const std::size_t aligned =
                (_used + align - 1) & ~(align - 1);
            if (aligned + size <= c.cap) {
                _used = aligned + size;
                return c.data.get() + aligned;
            }
            // Current chunk full: move on (recycled chunks keep
            // their storage, so a later run reuses it).
            ++_chunk;
            _used = 0;
            continue;
        }
        Chunk fresh;
        fresh.cap = size + align > kArenaChunkBytes ? size + align
                                                    : kArenaChunkBytes;
        fresh.data = std::make_unique<unsigned char[]>(fresh.cap);
        _chunks.push_back(std::move(fresh));
    }
}

void
CallbackArena::reset()
{
    // Reverse destruction order: later boxes may reference earlier
    // ones the way stack unwinding would.
    for (std::size_t i = _dtors.size(); i-- > 0;)
        _dtors[i].fn(_dtors[i].obj);
    _dtors.clear();
    _chunk = 0;
    _used = 0;
}

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

void
EventQueue::schedule(Tick when, EventFn fn, void *ctx)
{
    if (when < _now)
        panic("scheduling event at tick ", when, " in the past (now ",
              _now, ")");
    _heap.push(Event{when, _nextSeq++, fn, ctx});
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!_heap.empty() && _heap.top().when <= limit)
        step();
    if (_now < limit && _heap.empty())
        _now = limit;
    return _now;
}

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    // Pop before executing so the callback may schedule new events
    // (which mutates the heap) while it runs.
    const Event ev = _heap.pop();
    _now = ev.when;
    ++_executed;
    global_sim_events.fetch_add(1, std::memory_order_relaxed);
    ++_depth;
    ev.fn(ev.ctx);
    --_depth;
    // A drained queue holds no live boxed callables (the one that
    // just ran has returned), so the arena can recycle its storage -
    // unless we are nested inside an outer step()'s callback, whose
    // box must survive until it returns.
    if (_heap.empty() && _depth == 0)
        _arena.reset();
    return true;
}

void
EventQueue::clear()
{
    _heap.clear();
    if (_depth == 0)
        _arena.reset();
}

void
EventQueue::advanceTo(Tick when)
{
    if (when < _now)
        panic("advancing clock backwards: ", when, " < ", _now);
    _now = when;
}

// ---------------------------------------------------------------------
// ShardedEventQueue
// ---------------------------------------------------------------------

ShardedEventQueue::ShardedEventQueue(std::uint32_t shards)
{
    if (shards == 0)
        fatal("sharded event queue needs at least one shard");
    _shards.resize(shards);
    _tops.resize(shards);
}

void
ShardedEventQueue::reserve(std::uint32_t shard, std::size_t events)
{
    if (shard >= _shards.size())
        panic("reserve on shard ", shard, " of ", _shards.size());
    _shards[shard].reserve(events);
}

void
ShardedEventQueue::schedule(std::uint32_t shard, Tick when, EventFn fn,
                            void *ctx)
{
    if (shard >= _shards.size())
        panic("scheduling on shard ", shard, " of ", _shards.size());
    if (when < _now)
        panic("scheduling event at tick ", when, " in the past (now ",
              _now, ")");
    // The seq counter is global across shards: the merge below keyed
    // on (tick, seq) therefore reproduces the exact total order one
    // shared queue would execute, whatever shard events land on.
    _shards[shard].push(Event{when, _nextSeq++, fn, ctx});
    ++_pending;
    refreshTop(shard);
}

Tick
ShardedEventQueue::run()
{
    while (step()) {
    }
    return _now;
}

bool
ShardedEventQueue::step()
{
    if (_pending == 0)
        return false;
    // Deterministic merge: the shard whose top event has the lowest
    // (tick, seq) executes next. Seqs are globally unique, so the
    // shard id never has to break a tie (empty shards hold the
    // all-ones sentinel and lose every comparison).
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < _tops.size(); ++i) {
        const TopKey &t = _tops[i];
        const TopKey &b = _tops[best];
        if (t.when < b.when || (t.when == b.when && t.seq < b.seq))
            best = i;
    }
    const Event ev = _shards[best].pop();
    --_pending;
    refreshTop(best);
    _now = ev.when;
    ++_executed;
    global_sim_events.fetch_add(1, std::memory_order_relaxed);
    ++_depth;
    ev.fn(ev.ctx);
    --_depth;
    if (_depth == 0 && _pending == 0)
        _arena.reset();
    return true;
}

} // namespace centaur
