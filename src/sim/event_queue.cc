#include "sim/event_queue.hh"

#include <atomic>
#include <utility>

#include "sim/log.hh"

namespace centaur {

namespace {
/** Atomic because bench suites run sweep points on --jobs threads;
 *  the total is the same at any job count. */
std::atomic<std::uint64_t> global_sim_events{0};
} // namespace

std::uint64_t
globalSimEvents()
{
    return global_sim_events.load(std::memory_order_relaxed);
}

void
EventQueue::schedule(Tick when, std::function<void()> action)
{
    if (when < _now)
        panic("scheduling event at tick ", when, " in the past (now ",
              _now, ")");
    _queue.push(Event{when, _nextSeq++, std::move(action)});
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!_queue.empty() && _queue.top().when <= limit)
        step();
    if (_now < limit && _queue.empty())
        _now = limit;
    return _now;
}

bool
EventQueue::step()
{
    if (_queue.empty())
        return false;
    // Move the event out before popping so the action may schedule
    // new events (which mutates the queue) while it runs.
    Event ev = _queue.top();
    _queue.pop();
    _now = ev.when;
    ++_executed;
    global_sim_events.fetch_add(1, std::memory_order_relaxed);
    ev.action();
    return true;
}

void
EventQueue::clear()
{
    while (!_queue.empty())
        _queue.pop();
}

void
EventQueue::advanceTo(Tick when)
{
    if (when < _now)
        panic("advancing clock backwards: ", when, " < ", _now);
    _now = when;
}

} // namespace centaur
