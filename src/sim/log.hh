/**
 * @file
 * Minimal gem5-style status and error reporting: panic() for simulator
 * bugs (aborts), fatal() for user configuration errors (exits), and
 * warn()/inform() for status messages.
 */

#ifndef CENTAUR_SIM_LOG_HH
#define CENTAUR_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace centaur {

namespace detail {

/** Stream-compose a message from a pack of arguments. */
template <typename... Args>
std::string
composeMessage(const Args &...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * Report an internal simulator invariant violation and abort. Use for
 * conditions that should never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::composeMessage(args...).c_str());
    std::abort();
}

/**
 * Report an unrecoverable user-facing error (bad configuration,
 * invalid arguments) and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::composeMessage(args...).c_str());
    std::exit(1);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::composeMessage(args...).c_str());
}

/** Report a normal operational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stdout, "info: %s\n",
                 detail::composeMessage(args...).c_str());
}

} // namespace centaur

#endif // CENTAUR_SIM_LOG_HH
