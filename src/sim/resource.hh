/**
 * @file
 * Busy-until resource clocks.
 *
 * Throughput-critical component models in centaur-sim do not schedule
 * per-beat events; they keep "busy-until" clocks per serialized
 * resource (a DRAM data bus, a link direction, a core) and resolve
 * contention arithmetically: a request ready at tick R on a resource
 * free at tick B starts at max(R, B) and occupies the resource for
 * its duration. That pattern used to be re-implemented privately in
 * mem/dram.cc and interconnect/link.cc; ResourceClock is the shared
 * primitive, with deterministic FIFO grants (call order breaks ties,
 * never wall-clock or container order) plus the utilization and wait
 * accounting the shared-resource fabric (core/fabric.hh) reports.
 */

#ifndef CENTAUR_SIM_RESOURCE_HH
#define CENTAUR_SIM_RESOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace centaur {

/**
 * One named resource with @p lanes identical servers and FIFO
 * busy-until semantics. Grants are deterministic: requests are
 * served in call order, a gang request takes the earliest-free lanes
 * (ties broken by lane index), and no state depends on host timing.
 */
class ResourceClock
{
  public:
    /** One admitted occupation of the resource. */
    struct Grant
    {
        Tick ready = 0; //!< requested earliest start
        Tick start = 0; //!< actual start (>= ready)
        Tick end = 0;   //!< start + duration

        /** Queueing delay this grant suffered. */
        Tick wait() const { return start - ready; }
    };

    explicit ResourceClock(std::string name, std::uint32_t lanes = 1);

    /**
     * Occupy @p lanes lanes for @p duration ticks, earliest at
     * @p ready. A gang (lanes > 1) starts only once that many lanes
     * are simultaneously free; requests for more lanes than the
     * resource has are clamped to the full resource.
     */
    Grant acquire(Tick ready, Tick duration, std::uint32_t lanes = 1);

    /** Earliest tick any lane could accept a new request. */
    Tick busyUntil() const;

    const std::string &name() const { return _name; }
    std::uint32_t lanes() const
    {
        return static_cast<std::uint32_t>(_laneBusyUntil.size());
    }

    /** Grants admitted since construction/reset. */
    std::uint64_t grants() const { return _grants; }
    /** Total occupied lane-ticks (sum of lanes x duration). */
    Tick busyTicks() const { return _busyTicks; }
    /** Total queueing delay across grants (sum of start - ready). */
    Tick waitTicks() const { return _waitTicks; }
    /** Latest grant end observed. */
    Tick horizon() const { return _horizon; }

    /**
     * Occupied fraction of lane capacity up to @p horizon (defaults
     * to the latest grant end). Zero when nothing ran.
     */
    double utilization(Tick horizon = 0) const;

    /** Mean queueing delay per grant, microseconds. */
    double meanWaitUs() const;

    /** Clear lane clocks and statistics. */
    void reset();

    /**
     * A saved copy of the per-lane busy-until frontier, used to
     * cancel speculative work (hedged duplicates, ctrlplane/): take
     * a snapshot before booking the speculative grants, then
     * rollbackTo() once the race resolves. Only the grants booked
     * after the snapshot may be rolled back - earlier bookings are
     * below the saved frontier and stay untouched.
     */
    struct Frontier
    {
        std::vector<Tick> laneBusyUntil;
    };

    /** Capture the current lane frontier. */
    Frontier snapshot() const;

    /**
     * Truncate every lane's busy-until to
     * max(@p cutoff, its snapshot value), reclaiming the occupancy
     * booked past that point since @p snap was taken. Returns the
     * reclaimed lane-ticks (also subtracted from busyTicks()).
     */
    Tick rollbackTo(const Frontier &snap, Tick cutoff);

  private:
    std::string _name;
    std::vector<Tick> _laneBusyUntil;
    std::uint64_t _grants = 0;
    Tick _busyTicks = 0;
    Tick _waitTicks = 0;
    Tick _horizon = 0;
};

} // namespace centaur

#endif // CENTAUR_SIM_RESOURCE_HH
