/**
 * @file
 * Fundamental simulation units: ticks (picoseconds), byte sizes,
 * frequencies and bandwidth conversion helpers.
 *
 * All timing in centaur-sim is expressed in an integral Tick equal to
 * one picosecond. A picosecond base lets us represent a 2.4 GHz CPU
 * clock (416.67 ps), a 200 MHz FPGA clock (5000 ps) and DDR4-2400
 * timing (0.833 ns tCK) without fractional drift.
 */

#ifndef CENTAUR_SIM_UNITS_HH
#define CENTAUR_SIM_UNITS_HH

#include <cstdint>

namespace centaur {

/** Simulation time, in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock edges in some clock domain. */
using Cycles = std::uint64_t;

/** An address in the simulated (physical or virtual) address space. */
using Addr = std::uint64_t;

/** Ticks per common time units. */
constexpr Tick kTicksPerPs = 1;
constexpr Tick kTicksPerNs = 1000;
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Byte-size helpers (binary prefixes). */
constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** Byte-size helpers (decimal prefixes, used by the paper's Table I). */
constexpr std::uint64_t kKB = 1000ULL;
constexpr std::uint64_t kMB = 1000ULL * kKB;
constexpr std::uint64_t kGB = 1000ULL * kMB;

/** Convert a frequency in Hz to the tick period of one cycle. */
constexpr Tick
periodFromHz(double hz)
{
    return static_cast<Tick>(static_cast<double>(kTicksPerSec) / hz + 0.5);
}

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
ticksFromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Convert microseconds (possibly fractional) to ticks. */
constexpr Tick
ticksFromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
nsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
usFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert ticks to (fractional) milliseconds. */
constexpr double
msFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

/** Convert ticks to (fractional) seconds. */
constexpr double
secFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/**
 * Effective bandwidth in GB/s (decimal) for @p bytes transferred over
 * @p ticks of simulated time. Returns 0 for a zero-length interval.
 */
constexpr double
gbPerSec(std::uint64_t bytes, Tick ticks)
{
    if (ticks == 0)
        return 0.0;
    return static_cast<double>(bytes) / secFromTicks(ticks) / 1e9;
}

/**
 * Serialization time for @p bytes on a pipe of @p gb_per_sec decimal
 * GB/s. Rounds up to the next tick so back-to-back transfers never
 * exceed the configured bandwidth.
 */
constexpr Tick
serializationTicks(std::uint64_t bytes, double gb_per_sec)
{
    const double secs = static_cast<double>(bytes) / (gb_per_sec * 1e9);
    const double ticks = secs * static_cast<double>(kTicksPerSec);
    const Tick whole = static_cast<Tick>(ticks);
    return (static_cast<double>(whole) < ticks) ? whole + 1 : whole;
}

} // namespace centaur

#endif // CENTAUR_SIM_UNITS_HH
