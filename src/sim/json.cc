#include "sim/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/log.hh"

namespace centaur {

Json::Json(unsigned long v)
{
    if (v <= static_cast<unsigned long>(INT64_MAX)) {
        _type = Type::Int;
        _int = static_cast<std::int64_t>(v);
    } else {
        _type = Type::Double;
        _double = static_cast<double>(v);
    }
}

Json::Json(unsigned long long v)
{
    if (v <= static_cast<unsigned long long>(INT64_MAX)) {
        _type = Type::Int;
        _int = static_cast<std::int64_t>(v);
    } else {
        _type = Type::Double;
        _double = static_cast<double>(v);
    }
}

Json
Json::array()
{
    Json j;
    j._type = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j._type = Type::Object;
    return j;
}

std::int64_t
Json::asInt() const
{
    if (_type == Type::Int)
        return _int;
    if (_type == Type::Double)
        return static_cast<std::int64_t>(_double);
    return 0;
}

double
Json::asDouble() const
{
    if (_type == Type::Int)
        return static_cast<double>(_int);
    if (_type == Type::Double)
        return _double;
    return 0.0;
}

std::size_t
Json::size() const
{
    if (_type == Type::Array)
        return _array.size();
    if (_type == Type::Object)
        return _object.size();
    return 0;
}

Json &
Json::push(Json v)
{
    if (_type == Type::Null)
        _type = Type::Array;
    if (_type != Type::Array)
        fatal("Json::push on non-array value");
    _array.push_back(std::move(v));
    return *this;
}

const Json &
Json::at(std::size_t i) const
{
    if (_type != Type::Array || i >= _array.size())
        fatal("Json::at(", i, ") out of range");
    return _array[i];
}

Json &
Json::operator[](const std::string &key)
{
    if (_type == Type::Null)
        _type = Type::Object;
    if (_type != Type::Object)
        fatal("Json::operator[] on non-object value");
    for (auto &kv : _object)
        if (kv.first == key)
            return kv.second;
    _object.emplace_back(key, Json());
    return _object.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (_type != Type::Object)
        return nullptr;
    for (const auto &kv : _object)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
Json::operator==(const Json &other) const
{
    // Int/Int compares exactly (doubles lose precision above 2^53);
    // mixed Int/Double falls back to double comparison.
    if (_type == Type::Int && other._type == Type::Int)
        return _int == other._int;
    if (isNumber() && other.isNumber())
        return asDouble() == other.asDouble();
    if (_type != other._type)
        return false;
    switch (_type) {
    case Type::Null:
        return true;
    case Type::Bool:
        return _bool == other._bool;
    case Type::String:
        return _string == other._string;
    case Type::Array:
        return _array == other._array;
    case Type::Object:
        return _object == other._object;
    default:
        return true; // numbers handled above
    }
}

void
jsonEscape(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    // Shortest representation that round-trips through strtod.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    // %g may emit "inf"-free but exponent forms like 1e+06; both are
    // valid JSON. Ensure a leading digit convention ("-.5" never
    // happens with %g).
    return buf;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (!pretty)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(d),
                   ' ');
    };

    switch (_type) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += _bool ? "true" : "false";
        break;
    case Type::Int: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(_int));
        out += buf;
        break;
    }
    case Type::Double:
        out += jsonNumber(_double);
        break;
    case Type::String:
        jsonEscape(out, _string);
        break;
    case Type::Array:
        if (_array.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < _array.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            _array[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    case Type::Object:
        if (_object.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < _object.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            jsonEscape(out, _object[i].first);
            out += pretty ? ": " : ":";
            _object[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

/** Recursive-descent RFC 8259 parser over a string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : _text(text), _err(err)
    {
    }

    bool
    parse(Json &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (_pos != _text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 200;

    bool
    fail(const std::string &msg)
    {
        if (_err)
            *_err = msg + " at offset " + std::to_string(_pos);
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _text.size()) {
            const char c = _text[_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++_pos;
            else
                break;
        }
    }

    bool
    literal(const char *word, Json value, Json &out)
    {
        const std::size_t n = std::strlen(word);
        if (_text.compare(_pos, n, word) != 0)
            return fail("invalid literal");
        _pos += n;
        out = std::move(value);
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        switch (_text[_pos]) {
        case 'n':
            return literal("null", Json(), out);
        case 't':
            return literal("true", Json(true), out);
        case 'f':
            return literal("false", Json(false), out);
        case '"':
            return parseString(out);
        case '[':
            return parseArray(out, depth);
        case '{':
            return parseObject(out, depth);
        default:
            return parseNumber(out);
        }
    }

    bool
    parseHex4(unsigned &cp)
    {
        if (_pos + 4 > _text.size())
            return fail("truncated \\u escape");
        cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = _text[_pos + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
        }
        _pos += 4;
        return true;
    }

    static void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseStringRaw(std::string &s)
    {
        ++_pos; // opening quote
        while (true) {
            if (_pos >= _text.size())
                return fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(_text[_pos]);
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                s += static_cast<char>(c);
                ++_pos;
                continue;
            }
            ++_pos;
            if (_pos >= _text.size())
                return fail("truncated escape");
            const char esc = _text[_pos++];
            switch (esc) {
            case '"':
                s += '"';
                break;
            case '\\':
                s += '\\';
                break;
            case '/':
                s += '/';
                break;
            case 'b':
                s += '\b';
                break;
            case 'f':
                s += '\f';
                break;
            case 'n':
                s += '\n';
                break;
            case 'r':
                s += '\r';
                break;
            case 't':
                s += '\t';
                break;
            case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: expect a low surrogate next.
                    if (_text.compare(_pos, 2, "\\u") != 0)
                        return fail("unpaired high surrogate");
                    _pos += 2;
                    unsigned lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(s, cp);
                break;
            }
            default:
                return fail("invalid escape character");
            }
        }
    }

    bool
    parseString(Json &out)
    {
        std::string s;
        if (!parseStringRaw(s))
            return false;
        out = Json(std::move(s));
        return true;
    }

    bool
    parseNumber(Json &out)
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        if (_pos >= _text.size() ||
            !(_text[_pos] >= '0' && _text[_pos] <= '9'))
            return fail("invalid number");
        if (_text[_pos] == '0')
            ++_pos; // no leading zeros
        else
            while (_pos < _text.size() && _text[_pos] >= '0' &&
                   _text[_pos] <= '9')
                ++_pos;
        bool integral = true;
        if (_pos < _text.size() && _text[_pos] == '.') {
            integral = false;
            ++_pos;
            if (_pos >= _text.size() ||
                !(_text[_pos] >= '0' && _text[_pos] <= '9'))
                return fail("digit expected after decimal point");
            while (_pos < _text.size() && _text[_pos] >= '0' &&
                   _text[_pos] <= '9')
                ++_pos;
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            integral = false;
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            if (_pos >= _text.size() ||
                !(_text[_pos] >= '0' && _text[_pos] <= '9'))
                return fail("digit expected in exponent");
            while (_pos < _text.size() && _text[_pos] >= '0' &&
                   _text[_pos] <= '9')
                ++_pos;
        }
        const std::string token = _text.substr(start, _pos - start);
        if (integral) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                out = Json(v);
                return true;
            }
            // Fall through to double on int64 overflow.
        }
        errno = 0;
        const double d = std::strtod(token.c_str(), nullptr);
        if (errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL))
            return fail("number out of range");
        out = Json(d);
        return true;
    }

    bool
    parseArray(Json &out, int depth)
    {
        ++_pos; // '['
        out = Json::array();
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            Json elem;
            skipWs();
            if (!parseValue(elem, depth + 1))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(Json &out, int depth)
    {
        ++_pos; // '{'
        out = Json::object();
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseStringRaw(key))
                return false;
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':' after object key");
            ++_pos;
            skipWs();
            Json value;
            if (!parseValue(value, depth + 1))
                return false;
            out[key] = std::move(value);
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    const std::string &_text;
    std::string *_err;
    std::size_t _pos = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string *err)
{
    Parser p(text, err);
    return p.parse(out);
}

} // namespace centaur
