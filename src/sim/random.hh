/**
 * @file
 * Deterministic random number generation for workload synthesis:
 * a xorshift64* engine, uniform helpers and a Zipfian sampler used to
 * model skewed embedding-index popularity.
 */

#ifndef CENTAUR_SIM_RANDOM_HH
#define CENTAUR_SIM_RANDOM_HH

#include <cstdint>
#include <vector>

namespace centaur {

/**
 * xorshift64* PRNG. Small, fast and fully deterministic across
 * platforms, which matters for reproducible experiments.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Gaussian via Box-Muller (mean 0, stddev 1). */
    double nextGaussian();

  private:
    std::uint64_t _state;
    bool _hasSpare = false;
    double _spare = 0.0;
};

/**
 * Zipfian sampler over [0, n) with skew parameter s, using the
 * Gray et al. rejection-inversion-free CDF-table method for small n
 * and an analytical approximation for large n.
 *
 * Embedding-index popularity in production recommendation traffic is
 * heavily skewed; DLRM's bundled generator is uniform. Both are
 * exposed by the workload generator; Zipf enables locality studies.
 */
class ZipfSampler
{
  public:
    /**
     * @param n population size (number of embedding rows)
     * @param s skew (0 = uniform-like, ~1 = classic Zipf)
     */
    ZipfSampler(std::uint64_t n, double s);

    std::uint64_t sample(Rng &rng) const;

    std::uint64_t population() const { return _n; }
    double skew() const { return _s; }

  private:
    std::uint64_t _n;
    double _s;
    // Exact CDF table for small populations.
    std::vector<double> _cdf;
    // Analytical constants for the large-population approximation
    // (Nicola/Jain bounded-Pareto style inversion).
    double _alpha = 0.0;
    double _eta = 0.0;
    double _zetaN = 0.0;
    double _zeta2 = 0.0;
};

/**
 * Walker/Vose alias table over an arbitrary discrete distribution:
 * O(n) construction, O(1) per draw (one table slot plus one biased
 * coin), versus the O(log n) CDF binary search or the approximate
 * analytical inversion. Exact for any population size.
 */
class AliasTable
{
  public:
    AliasTable() = default;

    /** @param weights unnormalized, nonnegative, not all zero */
    explicit AliasTable(const std::vector<double> &weights);

    /** Draw a slot index in [0, size()) (two RNG draws). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t size() const { return _prob.size(); }

  private:
    std::vector<double> _prob;        //!< acceptance threshold per slot
    std::vector<std::uint32_t> _alias; //!< fallback slot on rejection
};

/**
 * Exact Zipfian sampler over [0, n) built on an alias table: the
 * full 1/rank^s pmf is tabulated once (even for multi-million-row
 * tables, where ZipfSampler falls back to an approximation), then
 * every draw is O(1). This is the sampler the workload generator
 * uses; ZipfSampler remains for comparison and tests.
 */
class ZipfAliasSampler
{
  public:
    /**
     * @param n population size (number of embedding rows)
     * @param s skew (0 = uniform, ~1 = classic Zipf)
     */
    ZipfAliasSampler(std::uint64_t n, double s);

    std::uint64_t sample(Rng &rng) const { return _table.sample(rng); }

    std::uint64_t population() const { return _n; }
    double skew() const { return _s; }

  private:
    std::uint64_t _n;
    double _s;
    AliasTable _table;
};

} // namespace centaur

#endif // CENTAUR_SIM_RANDOM_HH
