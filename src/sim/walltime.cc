#include "sim/walltime.hh"

// The one sanctioned wall-clock read in the tree: a report-only cost
// stamp, never consulted by any model. Everything it feeds is marked
// NEUTRAL in baselines and filtered from byte-identity comparisons.
// centaur-lint: allow(determinism)
#include <chrono>

namespace centaur {

std::uint64_t
wallMicros()
{
    // centaur-lint: allow(determinism)
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now.time_since_epoch())
            .count());
}

} // namespace centaur
