#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace centaur {

void
StatAverage::sample(double v)
{
    ++_count;
    _sum += v;
    _min = std::min(_min, v);
    _max = std::max(_max, v);
}

void
StatAverage::reset()
{
    _count = 0;
    _sum = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

StatHistogram::StatHistogram(double lo, double hi, std::size_t buckets)
    : _lo(lo), _hi(hi), _width((hi - lo) / static_cast<double>(buckets)),
      _buckets(buckets, 0)
{
    if (hi <= lo || buckets == 0)
        panic("invalid histogram bounds [", lo, ", ", hi, ") x", buckets);
}

void
StatHistogram::sample(double v)
{
    _avg.sample(v);
    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _width);
        idx = std::min(idx, _buckets.size() - 1);
        ++_buckets[idx];
    }
}

void
StatHistogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = 0;
    _overflow = 0;
    _avg.reset();
}

double
StatHistogram::quantile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t running = _underflow;
    if (running >= target)
        return _lo;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        running += _buckets[i];
        if (running >= target)
            return _lo + _width * static_cast<double>(i + 1);
    }
    // The quantile lands in the overflow bucket: the bucketed view
    // only knows "beyond _hi", but the running average tracked the
    // true maximum sample, which is a tight upper bound. Without
    // this, an overloaded server reports its tail as exactly the
    // histogram cap forever.
    return _avg.max();
}

StatScalar &
StatGroup::scalar(const std::string &name)
{
    return _scalars[name];
}

StatAverage &
StatGroup::average(const std::string &name)
{
    return _averages[name];
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = _scalars.find(name);
    return it == _scalars.end() ? 0.0 : it->second.value();
}

const StatAverage *
StatGroup::findAverage(const std::string &name) const
{
    auto it = _averages.find(name);
    return it == _averages.end() ? nullptr : &it->second;
}

void
StatGroup::resetAll()
{
    for (auto &[name, s] : _scalars)
        s.reset();
    for (auto &[name, a] : _averages)
        a.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, s] : _scalars)
        os << _name << '.' << name << ' ' << s.value() << '\n';
    for (const auto &[name, a] : _averages) {
        os << _name << '.' << name << ".mean " << a.mean() << '\n';
        os << _name << '.' << name << ".count " << a.count() << '\n';
    }
}

} // namespace centaur
