/**
 * @file
 * The centaur-lint contract: what `tools/centaur_lint.py` enforces
 * over this tree and how to talk back to it. This header carries no
 * runtime code — it exists so the rules and the pragma grammar are
 * documented next to the units they police, and so `#include
 * "sim/lint.hh"` in a reviewer's editor jumps here.
 *
 * Why a linter at all: the simulator's headline promise (ROADMAP.md)
 * is that a run's JSON report is byte-identical at any `--jobs`
 * count and on any host. That property dies quietly — one
 * `std::unordered_map` walk feeding an emission, one wall-clock read,
 * one float accumulated across threads — so the invariants are
 * machine-checked on every push instead of re-litigated in review.
 *
 * Rules (ids as the linter prints them):
 *
 *  - `determinism` — no `std::rand`/`srand`, `time()`,
 *    `std::random_device`, or `std::chrono` clock reads outside
 *    `src/sim/random.*`. All randomness flows from the seeded
 *    SplitMix64/xoshiro generators in sim/random.hh; all time is
 *    simulated Tick time from sim/units.hh.
 *
 *  - `ordered-emission` — iterating a `std::unordered_*` container
 *    is hash-order, which varies by libstdc++ version and seed, so
 *    any iteration (or even a declaration, absent an audit pragma)
 *    that can reach stats/JSON emission is flagged. Audit the use,
 *    then annotate it (see iommu.hh's TLB map for the worked
 *    example), or switch to std::map / a sorted snapshot.
 *
 *  - `unit-suffix` — a float field, parameter or JSON key holding a
 *    time/size/power quantity must name its unit with a suffix
 *    consistent with sim/units.hh (`Us`/`_us`, `Ns`/`_ns`,
 *    `Joules`/`_joules`, `Watts`/`_watts`, `Gbps`/`_gbps`, ...).
 *    `Tick`/`Cycles`-typed names carry their unit in the type and
 *    need no suffix, but must not claim a foreign one: `Tick
 *    queueDelayUs` and conversion-free mixes like `x_us = y_ticks`
 *    are errors. Convert through ticksFromUs()/usFromTicks().
 *
 *  - `parallel-reduction` — inside a `SuiteContext::parallelFor`
 *    body, every write to captured state must land in the
 *    iteration's own slot (`out[i] = ...`). Float `+=` across
 *    iterations is non-associative, so reductions happen
 *    sequentially after the join (see tests/lint/fixtures/clean.cc
 *    for the sanctioned shape).
 *
 *  - `schema-sync` — metric keys emitted by bench/suites/ and
 *    core/report.cc must appear in tools/check_bench.py's
 *    POSITIVE_KEYS / HIGHER_IS_WORSE / LOWER_IS_WORSE / NEUTRAL_KEYS
 *    tables, and vice versa, so the gate and the writers cannot
 *    drift apart.
 *
 *  - `header-hygiene` — headers carry a `CENTAUR_<PATH>_HH` include
 *    guard (this file's own guard is the template) and never
 *    `using namespace` at namespace scope.
 *
 *  - `event-capture` — a `std::function`-typed variable passed by
 *    name to an event-queue `schedule()`/`scheduleIn()` call
 *    re-boxes its closure into the queue's arena on every call.
 *    Hot paths that re-fire a long-lived round body pass a
 *    captureless trampoline plus a context pointer instead (see
 *    cluster/engine.cc's invokeNodeRound); src/sim/event_queue.* is
 *    exempt because the kernel's boxing overload is the one
 *    sanctioned boxing site.
 *
 * Suppression: a finding that survives an audit is silenced on its
 * line with
 *
 *     // <justification...> centaur-lint: allow(<rule-id>)
 *
 * either on the offending line itself or on a comment-only line
 * directly above it. Multiple ids are comma-separated:
 * `allow(unit-suffix, ordered-emission)`. A pragma is a claim that a
 * human audited the line — always write the justification before it.
 *
 * Running it:
 *
 *     python3 tools/centaur_lint.py              # human output, exit 1 on findings
 *     python3 tools/centaur_lint.py --json out.json
 *     python3 tools/centaur_lint.py --self-check # fixtures + clean-tree assert
 *     cmake --build build --target lint          # same pass + clang-tidy if installed
 */

#ifndef CENTAUR_SIM_LINT_HH
#define CENTAUR_SIM_LINT_HH

namespace centaur {

/**
 * The rule ids `tools/centaur_lint.py` enforces, in the order the
 * tool lists them (`--list-rules`). Kept here so C++ tooling and
 * tests can refer to the ids without parsing the Python source.
 */
inline constexpr const char *kLintRules[] = {
    "determinism",        //
    "ordered-emission",   //
    "unit-suffix",        //
    "parallel-reduction", //
    "schema-sync",        //
    "header-hygiene",     //
    "event-capture",      //
};

inline constexpr int kLintRuleCount =
    static_cast<int>(sizeof(kLintRules) / sizeof(kLintRules[0]));

} // namespace centaur

#endif // CENTAUR_SIM_LINT_HH
