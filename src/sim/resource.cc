#include "sim/resource.hh"

#include <algorithm>

#include "sim/log.hh"

namespace centaur {

ResourceClock::ResourceClock(std::string name, std::uint32_t lanes)
    : _name(std::move(name))
{
    if (lanes == 0)
        fatal("resource '", _name, "' needs at least one lane");
    _laneBusyUntil.assign(lanes, 0);
}

ResourceClock::Grant
ResourceClock::acquire(Tick ready, Tick duration, std::uint32_t lanes)
{
    const std::uint32_t want =
        std::max<std::uint32_t>(1, std::min(lanes, this->lanes()));

    Grant g;
    g.ready = ready;
    if (want == 1 && _laneBusyUntil.size() == 1) {
        // The single-server fast path: exactly the busy-until
        // arithmetic mem/dram.cc and interconnect/link.cc always used.
        Tick &lane = _laneBusyUntil.front();
        g.start = std::max(ready, lane);
        g.end = g.start + duration;
        lane = g.end;
    } else {
        // Gang scheduling: the request starts once `want` lanes are
        // simultaneously free. Pick the earliest-free lanes, lowest
        // index first, so grants are platform-independent.
        std::vector<std::uint32_t> order(_laneBusyUntil.size());
        for (std::uint32_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return _laneBusyUntil[a] <
                                    _laneBusyUntil[b];
                         });
        Tick start = ready;
        for (std::uint32_t i = 0; i < want; ++i)
            start = std::max(start, _laneBusyUntil[order[i]]);
        g.start = start;
        g.end = start + duration;
        for (std::uint32_t i = 0; i < want; ++i)
            _laneBusyUntil[order[i]] = g.end;
    }

    ++_grants;
    _busyTicks += static_cast<Tick>(want) * duration;
    _waitTicks += g.wait();
    _horizon = std::max(_horizon, g.end);
    return g;
}

Tick
ResourceClock::busyUntil() const
{
    return *std::min_element(_laneBusyUntil.begin(),
                             _laneBusyUntil.end());
}

double
ResourceClock::utilization(Tick horizon) const
{
    const Tick h = horizon ? horizon : _horizon;
    if (h == 0)
        return 0.0;
    return static_cast<double>(_busyTicks) /
           (static_cast<double>(h) *
            static_cast<double>(_laneBusyUntil.size()));
}

double
ResourceClock::meanWaitUs() const
{
    return _grants ? usFromTicks(_waitTicks) /
                         static_cast<double>(_grants)
                   : 0.0;
}

ResourceClock::Frontier
ResourceClock::snapshot() const
{
    return Frontier{_laneBusyUntil};
}

Tick
ResourceClock::rollbackTo(const Frontier &snap, Tick cutoff)
{
    if (snap.laneBusyUntil.size() != _laneBusyUntil.size())
        fatal("resource '", _name,
              "' frontier snapshot has ", snap.laneBusyUntil.size(),
              " lanes, clock has ", _laneBusyUntil.size());
    Tick reclaimed = 0;
    for (std::size_t i = 0; i < _laneBusyUntil.size(); ++i) {
        const Tick floor = std::max(cutoff, snap.laneBusyUntil[i]);
        if (_laneBusyUntil[i] > floor) {
            reclaimed += _laneBusyUntil[i] - floor;
            _laneBusyUntil[i] = floor;
        }
    }
    _busyTicks -= std::min(reclaimed, _busyTicks);
    return reclaimed;
}

void
ResourceClock::reset()
{
    std::fill(_laneBusyUntil.begin(), _laneBusyUntil.end(), 0);
    _grants = 0;
    _busyTicks = 0;
    _waitTicks = 0;
    _horizon = 0;
}

} // namespace centaur
