/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders arbitrary callbacks by tick with stable FIFO
 * ordering among same-tick events. Components either schedule events
 * here or (for throughput-critical models such as the DRAM data bus)
 * keep "busy-until" resource clocks and only consult the queue for
 * cross-component synchronization.
 *
 * The kernel is allocation-free on the hot path: an Event is a POD
 * {tick, seq, fn, ctx} record stored in a flat quaternary implicit
 * min-heap (shallower than a binary heap, and every sift touches one
 * cache line of children), and callables that need storage are boxed
 * once into a bump arena owned by the queue instead of a heap-backed
 * std::function per schedule. Engines that re-fire one long-lived
 * round body pass a captureless trampoline plus a context pointer
 * and never allocate at all.
 */

#ifndef CENTAUR_SIM_EVENT_QUEUE_HH
#define CENTAUR_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/units.hh"

namespace centaur {

/** Raw event callback: invoked as fn(ctx). */
using EventFn = void (*)(void *);

/** A scheduled callback. POD: 32 bytes, no owned storage. */
struct Event
{
    Tick when = 0;
    std::uint64_t seq = 0; //!< insertion order, breaks same-tick ties
    EventFn fn = nullptr;
    void *ctx = nullptr;
};

/**
 * Bump allocator for callables boxed by the template schedule()
 * overloads. Objects are placement-new'ed into chunked storage;
 * reset() runs any non-trivial destructors and recycles the chunks
 * without returning them to the system allocator, so a drained
 * queue's next run reuses the same memory.
 */
class CallbackArena
{
  public:
    template <typename F>
    std::decay_t<F> *
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        void *slot = allocate(sizeof(Fn), alignof(Fn));
        Fn *obj = new (slot) Fn(std::forward<F>(f));
        if constexpr (!std::is_trivially_destructible_v<Fn>)
            _dtors.push_back(
                {[](void *p) { static_cast<Fn *>(p)->~Fn(); }, obj});
        return obj;
    }

    /** Destroy every boxed callable and recycle the chunks. */
    void reset();

    ~CallbackArena() { reset(); }

  private:
    void *allocate(std::size_t size, std::size_t align);

    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t cap = 0;
    };
    struct Dtor
    {
        void (*fn)(void *);
        void *obj;
    };
    std::vector<Chunk> _chunks;
    std::size_t _chunk = 0; //!< chunk currently being bumped
    std::size_t _used = 0;  //!< bytes used in that chunk
    std::vector<Dtor> _dtors;
};

namespace detail {

/**
 * Flat quaternary implicit min-heap of Events ordered by (when, seq).
 * Children of node i live at 4i+1..4i+4: half the depth of a binary
 * heap and one contiguous scan per sift-down level.
 */
struct EventHeap
{
    std::vector<Event> v;

    static bool
    earlier(const Event &a, const Event &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    bool empty() const { return v.empty(); }
    std::size_t size() const { return v.size(); }
    const Event &top() const { return v.front(); }
    void reserve(std::size_t n) { v.reserve(n); }
    void clear() { v.clear(); }

    void
    push(const Event &e)
    {
        v.push_back(e);
        std::size_t i = v.size() - 1;
        while (i > 0) {
            const std::size_t parent = (i - 1) / 4;
            if (!earlier(v[i], v[parent]))
                break;
            std::swap(v[i], v[parent]);
            i = parent;
        }
    }

    Event
    pop()
    {
        const Event out = v.front();
        v.front() = v.back();
        v.pop_back();
        const std::size_t n = v.size();
        std::size_t i = 0;
        for (;;) {
            std::size_t best = i;
            const std::size_t first = 4 * i + 1;
            const std::size_t last =
                first + 4 < n ? first + 4 : n;
            for (std::size_t c = first; c < last; ++c)
                if (earlier(v[c], v[best]))
                    best = c;
            if (best == i)
                break;
            std::swap(v[i], v[best]);
            i = best;
        }
        return out;
    }
};

} // namespace detail

/**
 * A tick-ordered event queue with deterministic same-tick ordering.
 *
 * Events scheduled for the same tick execute in insertion order, which
 * keeps simulations reproducible across runs and platforms.
 */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events waiting to execute. */
    std::size_t pending() const { return _heap.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Pre-size the heap (and so every later push) for @p events
     * outstanding events. Engines size this from their admission
     * queue before the first schedule so the flat heap never
     * reallocates mid-run.
     */
    void reserve(std::size_t events) { _heap.reserve(events); }

    /**
     * Schedule @p fn(@p ctx) to run at absolute tick @p when.
     * Allocation-free; @p ctx must outlive the event. Scheduling in
     * the past is a simulator bug.
     */
    void schedule(Tick when, EventFn fn, void *ctx = nullptr);

    /**
     * Schedule a callable at absolute tick @p when, boxing a copy
     * into the queue's arena (one bump allocation, no malloc). The
     * box is destroyed when the queue next drains. For a round body
     * re-fired thousands of times, prefer the fn+ctx overload with a
     * captureless trampoline over re-boxing the closure every event.
     */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    schedule(Tick when, F &&f)
    {
        using Fn = std::decay_t<F>;
        Fn *slot = _arena.emplace<Fn>(std::forward<F>(f));
        schedule(when, [](void *p) { (*static_cast<Fn *>(p))(); },
                 slot);
    }

    /** Schedule @p fn(@p ctx) @p delta ticks from now. */
    void
    scheduleIn(Tick delta, EventFn fn, void *ctx = nullptr)
    {
        schedule(_now + delta, fn, ctx);
    }

    /** Schedule a boxed callable @p delta ticks from now. */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    scheduleIn(Tick delta, F &&f)
    {
        schedule(_now + delta, std::forward<F>(f));
    }

    /** Run events until the queue drains. Returns the final tick. */
    Tick run();

    /**
     * Run events with tick <= @p limit. Events scheduled beyond the
     * limit stay queued; time advances to min(limit, last executed).
     */
    Tick runUntil(Tick limit);

    /** Execute at most one event. @return false if the queue is empty. */
    bool step();

    /** Drop all pending events (time does not move). */
    void clear();

    /**
     * Advance the clock to @p when without executing anything.
     * Used by batch-mode component models that resolve latencies
     * analytically but still want a consistent global clock.
     */
    void advanceTo(Tick when);

  private:
    detail::EventHeap _heap;
    CallbackArena _arena;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    unsigned _depth = 0; //!< step() nesting; arena resets at depth 0
};

/**
 * Per-node event queues with a deterministic lowest-(tick, seq)
 * merge: every schedule - whichever shard it lands on - draws from
 * ONE global sequence counter, and execution always picks the shard
 * whose top event has the lowest (tick, seq). The resulting total
 * order is exactly the order a single shared EventQueue would have
 * produced for the same schedule calls (the shard id never has to
 * break a tie because seqs are globally unique), so multi-node sims
 * keep byte-identical reports while each shard's heap stays small:
 * pushes and pops sift through a heap of one node's events, not the
 * whole cluster's, and the merge is a linear scan of N tops.
 */
class ShardedEventQueue
{
  public:
    explicit ShardedEventQueue(std::uint32_t shards);

    /** Current simulated time. */
    Tick now() const { return _now; }

    std::uint32_t
    shards() const
    {
        return static_cast<std::uint32_t>(_shards.size());
    }

    /** Events waiting to execute, across all shards. */
    std::size_t pending() const { return _pending; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /** Pre-size @p shard's heap for @p events outstanding events. */
    void reserve(std::uint32_t shard, std::size_t events);

    /**
     * Schedule @p fn(@p ctx) on @p shard at absolute tick @p when.
     * Allocation-free. Scheduling in the past is a simulator bug.
     */
    void schedule(std::uint32_t shard, Tick when, EventFn fn,
                  void *ctx = nullptr);

    /** Schedule a callable on @p shard, boxed into the arena. */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    schedule(std::uint32_t shard, Tick when, F &&f)
    {
        using Fn = std::decay_t<F>;
        Fn *slot = _arena.emplace<Fn>(std::forward<F>(f));
        schedule(shard, when,
                 [](void *p) { (*static_cast<Fn *>(p))(); }, slot);
    }

    /** Run events until every shard drains. Returns the final tick. */
    Tick run();

    /** Execute at most one event. @return false if all shards idle. */
    bool step();

  private:
    /**
     * (when, seq) of each shard's top event, mirrored into one
     * contiguous array so the per-step merge scans two cache lines
     * instead of chasing every shard heap's storage. An empty shard
     * holds the all-ones sentinel, which loses every comparison.
     */
    struct TopKey
    {
        Tick when = ~Tick(0);
        std::uint64_t seq = ~std::uint64_t(0);
    };

    void
    refreshTop(std::uint32_t shard)
    {
        const detail::EventHeap &h = _shards[shard];
        _tops[shard] = h.empty()
                           ? TopKey{}
                           : TopKey{h.top().when, h.top().seq};
    }

    std::vector<detail::EventHeap> _shards;
    std::vector<TopKey> _tops;
    CallbackArena _arena;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::size_t _pending = 0;
    unsigned _depth = 0;
};

/**
 * Process-wide count of events executed by every EventQueue since
 * start-up. A pure function of the simulated work, so bench reports
 * stamp deltas of it ("sim_events") as a deterministic cost metric:
 * two runs of the same suite agree exactly, at any thread count.
 */
std::uint64_t globalSimEvents();

/**
 * Credit @p n simulated events to the process-wide counter. The
 * serving engine's closed-form fast path (core/server.cc) executes
 * its scheduling rounds as a plain loop instead of queue events; it
 * books one simulated event per round here so sim_events stays a
 * pure function of the simulated work, identical to the event path.
 */
void addGlobalSimEvents(std::uint64_t n);

} // namespace centaur

#endif // CENTAUR_SIM_EVENT_QUEUE_HH
