/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders arbitrary callbacks by tick with stable FIFO
 * ordering among same-tick events. Components either schedule events
 * here or (for throughput-critical models such as the DRAM data bus)
 * keep "busy-until" resource clocks and only consult the queue for
 * cross-component synchronization.
 */

#ifndef CENTAUR_SIM_EVENT_QUEUE_HH
#define CENTAUR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/units.hh"

namespace centaur {

/** A scheduled callback. */
struct Event
{
    Tick when = 0;
    std::uint64_t seq = 0; //!< insertion order, breaks same-tick ties
    std::function<void()> action;
};

/**
 * A tick-ordered event queue with deterministic same-tick ordering.
 *
 * Events scheduled for the same tick execute in insertion order, which
 * keeps simulations reproducible across runs and platforms.
 */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events waiting to execute. */
    std::size_t pending() const { return _queue.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Schedule @p action to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void schedule(Tick when, std::function<void()> action);

    /** Schedule @p action to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, std::function<void()> action)
    {
        schedule(_now + delta, std::move(action));
    }

    /** Run events until the queue drains. Returns the final tick. */
    Tick run();

    /**
     * Run events with tick <= @p limit. Events scheduled beyond the
     * limit stay queued; time advances to min(limit, last executed).
     */
    Tick runUntil(Tick limit);

    /** Execute at most one event. @return false if the queue is empty. */
    bool step();

    /** Drop all pending events (time does not move). */
    void clear();

    /**
     * Advance the clock to @p when without executing anything.
     * Used by batch-mode component models that resolve latencies
     * analytically but still want a consistent global clock.
     */
    void advanceTo(Tick when);

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> _queue;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

/**
 * Process-wide count of events executed by every EventQueue since
 * start-up. A pure function of the simulated work, so bench reports
 * stamp deltas of it ("sim_events") as a deterministic cost metric:
 * two runs of the same suite agree exactly, at any thread count.
 */
std::uint64_t globalSimEvents();

} // namespace centaur

#endif // CENTAUR_SIM_EVENT_QUEUE_HH
