/**
 * @file
 * Host wall-clock sampling for bench-report cost stamps.
 *
 * The simulator itself never reads the host clock (the determinism
 * lint bans ambient time sources); this helper exists solely so the
 * bench driver can stamp "sim_wall_us" next to the deterministic
 * "sim_events" counter. Consumers treat it as NEUTRAL: baselines
 * ignore it and the CI byte-identity comparison filters it out.
 */

#ifndef CENTAUR_SIM_WALLTIME_HH
#define CENTAUR_SIM_WALLTIME_HH

#include <cstdint>

namespace centaur {

/** Monotonic host time in microseconds since an arbitrary origin. */
std::uint64_t wallMicros();

} // namespace centaur

#endif // CENTAUR_SIM_WALLTIME_HH
