#include "sim/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace centaur {

void
TextTable::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    _rows.push_back(std::move(row));
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_header.size(), 0);
    auto widen = [&widths](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i >= widths.size())
                widths.resize(i + 1, 0);
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    widen(_header);
    for (const auto &row : _rows)
        widen(row);

    os << "== " << _title << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cell;
        }
        os << '\n';
    };
    emit(_header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : _rows)
        emit(row);
    os << '\n';
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << row[i];
        }
        os << '\n';
    };
    emit(_header);
    for (const auto &row : _rows)
        emit(row);
}

} // namespace centaur
