/**
 * @file
 * Lightweight statistics framework: named scalars, averages and
 * histograms registered into a StatGroup that can be dumped as text.
 * Modeled loosely on gem5's stats package, scoped to what the
 * reproduction needs.
 */

#ifndef CENTAUR_SIM_STATS_HH
#define CENTAUR_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace centaur {

/** A monotonically accumulating scalar statistic. */
class StatScalar
{
  public:
    StatScalar() = default;

    void operator+=(double v) { _value += v; }
    void operator++() { _value += 1.0; }
    void operator++(int) { _value += 1.0; }
    void set(double v) { _value = v; }
    void reset() { _value = 0.0; }

    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/** Running mean/min/max over observed samples. */
class StatAverage
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-width bucketed histogram with underflow/overflow buckets. */
class StatHistogram
{
  public:
    /**
     * @param lo lower bound of the first bucket
     * @param hi upper bound of the last bucket
     * @param buckets number of equal-width buckets between lo and hi
     */
    StatHistogram(double lo, double hi, std::size_t buckets);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return _avg.count(); }
    double mean() const { return _avg.mean(); }
    double min() const { return _avg.min(); }
    double max() const { return _avg.max(); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    /**
     * Smallest value v such that at least @p q of samples are <= v.
     * Quantiles that land in the overflow bucket return the true
     * maximum observed sample rather than the histogram cap.
     */
    double quantile(double q) const;

  private:
    double _lo;
    double _hi;
    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    StatAverage _avg;
};

/**
 * A named collection of statistics. Components own a StatGroup and
 * register their stats with stable names so experiment harnesses can
 * query and print them uniformly.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatScalar &scalar(const std::string &name);
    StatAverage &average(const std::string &name);

    /** @return registered scalar value, or 0 if absent. */
    double scalarValue(const std::string &name) const;

    /** @return registered average, or nullptr if absent. */
    const StatAverage *findAverage(const std::string &name) const;

    const std::string &name() const { return _name; }

    /** Reset every registered stat to its initial state. */
    void resetAll();

    /** Dump all stats, one `group.stat value` line each. */
    void dump(std::ostream &os) const;

  private:
    std::string _name;
    std::map<std::string, StatScalar> _scalars;
    std::map<std::string, StatAverage> _averages;
};

} // namespace centaur

#endif // CENTAUR_SIM_STATS_HH
