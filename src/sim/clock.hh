/**
 * @file
 * Clock-domain helper converting between cycles in a component clock
 * (CPU 2.4 GHz, FPGA 200 MHz, DDR4 1.2 GHz) and global ticks.
 */

#ifndef CENTAUR_SIM_CLOCK_HH
#define CENTAUR_SIM_CLOCK_HH

#include "sim/log.hh"
#include "sim/units.hh"

namespace centaur {

/** A fixed-frequency clock domain. */
class ClockDomain
{
  public:
    explicit ClockDomain(double hz) : _hz(hz), _period(periodFromHz(hz))
    {
        if (hz <= 0.0)
            panic("clock frequency must be positive, got ", hz);
    }

    double frequencyHz() const { return _hz; }
    Tick period() const { return _period; }

    /** Ticks spanned by @p cycles of this clock. */
    Tick toTicks(Cycles cycles) const { return cycles * _period; }

    /** Whole cycles elapsed after @p ticks (rounded up). */
    Cycles
    toCycles(Tick ticks) const
    {
        return (ticks + _period - 1) / _period;
    }

    /** Next clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        return ((t + _period - 1) / _period) * _period;
    }

  private:
    double _hz;
    Tick _period;
};

} // namespace centaur

#endif // CENTAUR_SIM_CLOCK_HH
