/**
 * @file
 * Console table printer used by the benchmark harnesses to emit
 * paper-style rows (aligned text plus optional CSV).
 */

#ifndef CENTAUR_SIM_TABLE_HH
#define CENTAUR_SIM_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace centaur {

/** An aligned text table with a title, header row and data rows. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : _title(std::move(title)) {}

    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Format a double with @p precision fractional digits. */
    static std::string fmt(double v, int precision = 2);

    /** Print with column alignment and a rule under the header. */
    void print(std::ostream &os) const;

    /** Print as CSV (no title). */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return _title; }
    std::size_t rows() const { return _rows.size(); }

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace centaur

#endif // CENTAUR_SIM_TABLE_HH
