/**
 * @file
 * Minimal dependency-free JSON document model: an order-preserving
 * value tree with a writer (serialize with escaping and
 * round-trippable number formatting) and a strict recursive-descent
 * parser. This is the backbone of the machine-readable results
 * pipeline (core/report.hh, centaur_bench, tools/check_bench.py);
 * it deliberately supports only what RFC 8259 allows, so emitted
 * reports are consumable by any off-the-shelf tool.
 *
 * Non-finite doubles (NaN/Inf) have no JSON representation and are
 * serialized as null; the downstream check_bench.py gate treats a
 * null latency as a hard failure, so simulator bugs surface in CI
 * instead of silently round-tripping.
 */

#ifndef CENTAUR_SIM_JSON_HH
#define CENTAUR_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace centaur {

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Int,    //!< exactly-representable integer (int64 range)
        Double, //!< any other finite (or non-finite) number
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : _type(Type::Bool), _bool(b) {}
    Json(int v) : _type(Type::Int), _int(v) {}
    Json(unsigned v) : _type(Type::Int), _int(v) {}
    Json(long v) : _type(Type::Int), _int(v) {}
    Json(long long v) : _type(Type::Int), _int(v) {}
    Json(unsigned long v);
    Json(unsigned long long v);
    Json(double v) : _type(Type::Double), _double(v) {}
    Json(const char *s) : _type(Type::String), _string(s) {}
    Json(std::string s) : _type(Type::String), _string(std::move(s)) {}

    /** An empty array / object (distinct from null). */
    static Json array();
    static Json object();

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const
    {
        return _type == Type::Int || _type == Type::Double;
    }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    bool asBool() const { return _bool; }
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const { return _string; }

    /** Array element count or object member count. */
    std::size_t size() const;

    /** Append to an array (converts a null value into an array). */
    Json &push(Json v);

    /** Array element access; fatal on out-of-range. */
    const Json &at(std::size_t i) const;

    /**
     * Object member access: inserts a null member if absent
     * (converting a null value into an object). Insertion order is
     * preserved on output.
     */
    Json &operator[](const std::string &key);

    /** Lookup without insertion; nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &items() const
    {
        return _object;
    }

    /** Array elements. */
    const std::vector<Json> &elements() const { return _array; }

    /**
     * Serialize. @p indent < 0 emits compact one-line JSON;
     * otherwise pretty-print with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Strict RFC 8259 parse of @p text (entire string must be one
     * JSON document). On failure returns false and, when @p err is
     * non-null, stores a message with the byte offset.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *err = nullptr);

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const
    {
        return !(*this == other);
    }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type _type = Type::Null;
    bool _bool = false;
    std::int64_t _int = 0;
    double _double = 0.0;
    std::string _string;
    std::vector<Json> _array;
    std::vector<std::pair<std::string, Json>> _object;
};

/** Append the JSON escape of @p s (with quotes) to @p out. */
void jsonEscape(std::string &out, const std::string &s);

/**
 * Format a double as the shortest decimal string that parses back
 * to the same value; "null" for NaN/Inf.
 */
std::string jsonNumber(double v);

} // namespace centaur

#endif // CENTAUR_SIM_JSON_HH
