#include "sim/random.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace centaur {

namespace {

constexpr std::uint64_t kCdfTableLimit = 1 << 16;

double
generalizedHarmonic(std::uint64_t n, double s)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), s);
    return sum;
}

} // namespace

Rng::Rng(std::uint64_t seed) : _state(seed ? seed : 1)
{
}

std::uint64_t
Rng::next()
{
    // xorshift64* (Vigna 2016).
    _state ^= _state >> 12;
    _state ^= _state << 25;
    _state ^= _state >> 27;
    return _state * 0x2545F4914F6CDD1DULL;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with zero bound");
    // Rejection-free multiply-shift; bias is negligible for the
    // population sizes used here (< 2^32 rows) but we debias anyway
    // with a single rejection loop for exactness in tests.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (_hasSpare) {
        _hasSpare = false;
        return _spare;
    }
    double u;
    double v;
    double s;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    _spare = v * mul;
    _hasSpare = true;
    return u * mul;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : _n(n), _s(s)
{
    if (n == 0)
        panic("ZipfSampler requires a nonzero population");
    if (s < 0.0)
        panic("ZipfSampler requires nonnegative skew, got ", s);
    if (n <= kCdfTableLimit) {
        _cdf.resize(n);
        double running = 0.0;
        const double h = generalizedHarmonic(n, s);
        for (std::uint64_t i = 0; i < n; ++i) {
            running += 1.0 / std::pow(static_cast<double>(i + 1), s) / h;
            _cdf[i] = running;
        }
        _cdf.back() = 1.0;
    } else {
        // Jain's approximation: exact zeta over the first two terms,
        // integral approximation of the tail.
        _zeta2 = generalizedHarmonic(2, s);
        const double nd = static_cast<double>(n);
        if (std::abs(s - 1.0) < 1e-9) {
            _zetaN = std::log(nd) + 0.5772156649;
        } else {
            _zetaN = _zeta2 +
                     (std::pow(nd, 1.0 - s) - std::pow(2.0, 1.0 - s)) /
                         (1.0 - s);
        }
        _alpha = 1.0 / (1.0 - s == 0.0 ? 1e-12 : (1.0 - s));
        _eta = (1.0 - std::pow(2.0 / nd, 1.0 - s)) /
               (1.0 - _zeta2 / _zetaN);
    }
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (!_cdf.empty()) {
        const double u = rng.nextDouble();
        auto it = std::lower_bound(_cdf.begin(), _cdf.end(), u);
        return static_cast<std::uint64_t>(it - _cdf.begin());
    }
    // Large-population analytical inversion.
    const double u = rng.nextDouble();
    const double uz = u * _zetaN;
    if (uz < 1.0)
        return 0;
    if (uz < _zeta2)
        return 1;
    const double nd = static_cast<double>(_n);
    const auto rank = static_cast<std::uint64_t>(
        nd * std::pow(_eta * u - _eta + 1.0, _alpha));
    return std::min(rank, _n - 1);
}

AliasTable::AliasTable(const std::vector<double> &weights)
{
    if (weights.empty())
        panic("AliasTable requires a nonempty weight vector");
    if (weights.size() > 0xffffffffULL)
        panic("AliasTable supports at most 2^32 slots, got ",
              weights.size());
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0 || !std::isfinite(w))
            panic("AliasTable weights must be finite and nonnegative");
        total += w;
    }
    if (total <= 0.0)
        panic("AliasTable requires a positive total weight");

    const std::size_t n = weights.size();
    _prob.resize(n);
    _alias.resize(n);

    // Vose's method: split slots into under/over-full worklists and
    // pair each underfull slot with an overfull donor.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    const double scale = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * scale;
        (scaled[i] < 1.0 ? small : large)
            .push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        small.pop_back();
        const std::uint32_t l = large.back();
        large.pop_back();
        _prob[s] = scaled[s];
        _alias[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Float residue: leftovers accept unconditionally.
    for (std::uint32_t i : small) {
        _prob[i] = 1.0;
        _alias[i] = i;
    }
    for (std::uint32_t i : large) {
        _prob[i] = 1.0;
        _alias[i] = i;
    }
}

std::uint64_t
AliasTable::sample(Rng &rng) const
{
    const std::uint64_t slot = rng.nextBelow(_prob.size());
    return rng.nextDouble() < _prob[slot] ? slot : _alias[slot];
}

ZipfAliasSampler::ZipfAliasSampler(std::uint64_t n, double s)
    : _n(n), _s(s)
{
    if (n == 0)
        panic("ZipfAliasSampler requires a nonzero population");
    if (s < 0.0)
        panic("ZipfAliasSampler requires nonnegative skew, got ", s);
    std::vector<double> weights(n);
    for (std::uint64_t i = 0; i < n; ++i)
        weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    _table = AliasTable(weights);
}

} // namespace centaur
