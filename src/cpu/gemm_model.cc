#include "cpu/gemm_model.hh"

#include <algorithm>

namespace centaur {

namespace {

/** Sustained LLC streaming bandwidth for cache-resident operands. */
constexpr double kLlcStreamGBps = 40.0;

/** Floor on achieved throughput (scalar fallback paths). */
constexpr double kMinGflopsPerThread = 10.0;

} // namespace

CpuGemmModel::CpuGemmModel(const CpuConfig &cfg,
                           CacheHierarchy &hierarchy, DramModel &dram)
    : _cfg(cfg), _hier(hierarchy), _dram(dram)
{
}

GemmStats
CpuGemmModel::run(std::uint32_t m, std::uint32_t k, std::uint32_t n,
                  Addr a_base, Addr w_base, Addr c_base, Tick start)
{
    GemmStats res;
    res.start = start;
    res.flops = 2ULL * m * k * n;

    const std::uint64_t llc_acc0 = _hier.llc().accesses();
    const std::uint64_t llc_miss0 = _hier.llc().misses();

    // Walk the operand footprints through the cache model. Weights
    // are typically resident (warmed at deployment, Section III-B);
    // inputs stream in; outputs stream out.
    const std::uint64_t a_bytes = 4ULL * m * k;
    const std::uint64_t w_bytes = 4ULL * k * n;
    const std::uint64_t c_bytes = 4ULL * m * n;
    _hier.accessRange(a_base, a_bytes);
    _hier.accessRange(w_base, w_bytes);
    _hier.accessRange(c_base, c_bytes);

    res.llcAccesses = _hier.llc().accesses() - llc_acc0;
    res.llcMisses = _hier.llc().misses() - llc_miss0;

    // Thread count ramps with available work, mirroring MKL/ATen
    // heuristics that keep small GEMMs on few threads.
    const std::uint32_t threads = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(res.flops / 200000), 1, _cfg.cores);
    res.threadsUsed = threads;

    // Efficiency ramp: eff = peak / (1 + f_half / f_thread).
    const double f_thread =
        static_cast<double>(res.flops) / threads;
    const double eff =
        _cfg.gemmPeakEfficiency / (1.0 + _cfg.gemmHalfEffFlops / f_thread);
    const double gflops_per_thread =
        std::max(_cfg.flopsPerCorePerSec() * eff / 1e9,
                 kMinGflopsPerThread);
    const double compute_secs = static_cast<double>(res.flops) /
                                (threads * gflops_per_thread * 1e9);

    // Bandwidth terms: LLC misses stream from DRAM, the rest of the
    // operand traffic streams from the LLC.
    const std::uint64_t miss_bytes =
        res.llcMisses * _hier.lineBytes();
    const double dram_secs =
        static_cast<double>(miss_bytes) /
        (0.6 * _dram.config().peakBandwidthGBps() * 1e9);
    const double llc_secs = static_cast<double>(
                                a_bytes + w_bytes + c_bytes) /
                            (kLlcStreamGBps * 1e9);

    const double busy_secs =
        std::max({compute_secs, dram_secs, llc_secs});

    Tick latency = ticksFromUs(_cfg.dispatchUs);
    if (threads > 1)
        latency += ticksFromUs(_cfg.ompForkJoinUs);
    latency += static_cast<Tick>(busy_secs * kTicksPerSec);
    res.end = start + latency;

    // AVX2 FMA retires 16 flops per instruction; add 30% loop and
    // address-generation overhead plus the dispatch path.
    res.instructions =
        static_cast<std::uint64_t>(static_cast<double>(res.flops) /
                                   16.0 * 1.3) +
        static_cast<std::uint64_t>(_cfg.dispatchUs *
                                   _cfg.ipc * _cfg.freqGHz * 1e3);
    return res;
}

} // namespace centaur
