/**
 * @file
 * CPU GEMM timing model.
 *
 * Captures the two regimes the paper's MLP measurements show: small
 * inference GEMMs are dispatch- and bandwidth-bound (achieving a few
 * GFLOPS), while larger batched GEMMs ramp toward a fraction of AVX2
 * peak. Weight streams walk the cache hierarchy so the MLP rows of
 * Fig 6 (low LLC miss rate, low MPKI) fall out of the same machinery
 * as the embedding rows.
 */

#ifndef CENTAUR_CPU_GEMM_MODEL_HH
#define CENTAUR_CPU_GEMM_MODEL_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "cpu/cpu_config.hh"
#include "mem/dram.hh"
#include "sim/units.hh"

namespace centaur {

/** Timing and cache statistics of one GEMM execution. */
struct GemmStats
{
    Tick start = 0;
    Tick end = 0;
    std::uint64_t flops = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    std::uint32_t threadsUsed = 0;

    Tick latency() const { return end - start; }

    double
    achievedGflops() const
    {
        const double secs = secFromTicks(latency());
        return secs > 0.0 ? static_cast<double>(flops) / secs / 1e9
                          : 0.0;
    }
};

/**
 * Models C[MxN] = A[MxK] x W[KxN] on the multicore CPU.
 */
class CpuGemmModel
{
  public:
    CpuGemmModel(const CpuConfig &cfg, CacheHierarchy &hierarchy,
                 DramModel &dram);

    /**
     * Time one GEMM starting at @p start.
     *
     * @param a_base address of the streaming input operand
     * @param w_base address of the (typically cache-warm) weights
     * @param c_base address of the output tensor
     */
    GemmStats run(std::uint32_t m, std::uint32_t k, std::uint32_t n,
                  Addr a_base, Addr w_base, Addr c_base, Tick start);

  private:
    const CpuConfig &_cfg;
    CacheHierarchy &_hier;
    DramModel &_dram;
};

} // namespace centaur

#endif // CENTAUR_CPU_GEMM_MODEL_HH
