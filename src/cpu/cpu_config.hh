/**
 * @file
 * CPU model parameters, defaulted to the paper's evaluation platform:
 * the Xeon E5-2680v4 (Broadwell) half of Intel HARPv2 - 14 cores at
 * 2.4 GHz, AVX2, 10 L1 MSHRs per core, 4-channel DDR4 at 77 GB/s.
 */

#ifndef CENTAUR_CPU_CPU_CONFIG_HH
#define CENTAUR_CPU_CPU_CONFIG_HH

#include <cstdint>

namespace centaur {

/** Static CPU parameters used by the timing models. */
struct CpuConfig
{
    std::uint32_t cores = 14;
    double freqGHz = 2.4;
    double ipc = 2.0; //!< sustained scalar micro-op throughput

    /** Hardware L1 miss-status-holding registers per core. */
    std::uint32_t mshrsPerCore = 10;

    /**
     * Effective concurrently-outstanding miss lines per thread for
     * the SparseLengthsSum gather loop. Far below mshrsPerCore: the
     * dependent index->address->load chain and the ROB window keep a
     * latency-optimized core from exposing more memory-level
     * parallelism - the central observation of Section III-C.
     * Four lines = two 128 B embedding vectors in
     * flight (well below the 10 hardware MSHRs); calibrated so 14
     * cores sustain the paper's ~18-20 GB/s ceiling at batch 128
     * while a single thread stays near 1 GB/s.
     */
    std::uint32_t gatherWindowLines = 4;

    /** AVX2: 2 FMA ports x 8 fp32 lanes x 2 flops = 32 flops/cycle. */
    std::uint32_t simdFlopsPerCycle = 32;

    /** OpenMP parallel-region fork/join overhead (microseconds). */
    double ompForkJoinUs = 2.5;

    /** Per-operator framework dispatch overhead (microseconds):
     *  the PyTorch/ATen operator entry path measured around the
     *  paper's 1.5-nightly era. */
    double dispatchUs = 4.0;

    /** Scalar instructions per embedding lookup (loop + addressing
     *  + AVX reduce), for the MPKI model of Fig 6. */
    std::uint32_t instrPerLookup = 170;

    /** Instructions per sparse-index fetch. */
    std::uint32_t instrPerIndex = 4;

    /** Peak fraction of SIMD throughput large GEMMs achieve. */
    double gemmPeakEfficiency = 0.85;

    /**
     * GEMM flops-per-core at which efficiency reaches half its peak;
     * models the poor utilization of small inference GEMMs.
     */
    double gemmHalfEffFlops = 2.0e7;

    double flopsPerCorePerSec() const
    {
        return freqGHz * 1e9 * simdFlopsPerCycle;
    }
};

} // namespace centaur

#endif // CENTAUR_CPU_CPU_CONFIG_HH
