#include "cpu/gather_engine.hh"

#include <algorithm>
#include <deque>
#include <vector>

#include "sim/log.hh"

namespace centaur {

namespace {

/** Per-thread execution state while sweeping one table's lookups. */
struct ThreadCursor
{
    Tick now = 0;
    std::deque<Tick> pending; //!< outstanding miss completions
    std::uint32_t sample = 0; //!< next sample to process
    std::uint32_t sampleEnd = 0;
    std::uint32_t lookup = 0; //!< next lookup within sample

    bool done() const { return sample >= sampleEnd; }
};

} // namespace

GatherEngine::GatherEngine(const CpuConfig &cfg,
                           CacheHierarchy &hierarchy, DramModel &dram)
    : _cfg(cfg), _hier(hierarchy), _dram(dram)
{
}

GatherResult
GatherEngine::run(const ReferenceModel &model,
                  const InferenceBatch &batch, Tick start)
{
    const DlrmConfig &cfg = model.config();
    const MemoryLayout &layout = model.layout();
    const std::uint64_t vec_bytes = cfg.vectorBytes();
    const std::uint32_t lines_per_vec = static_cast<std::uint32_t>(
        (vec_bytes + _hier.lineBytes() - 1) / _hier.lineBytes());

    const std::uint64_t llc_acc0 = _hier.llc().accesses();
    const std::uint64_t llc_miss0 = _hier.llc().misses();

    const double instr_per_sec = _cfg.ipc * _cfg.freqGHz * 1e9;
    const Tick lookup_instr_ticks = static_cast<Tick>(
        static_cast<double>(_cfg.instrPerLookup + _cfg.instrPerIndex) /
        instr_per_sec * kTicksPerSec);
    const Tick store_ticks = static_cast<Tick>(
        static_cast<double>(cfg.embeddingDim) / 8.0 / instr_per_sec *
        kTicksPerSec);
    const Tick dispatch = ticksFromUs(_cfg.dispatchUs);
    const Tick fork_join = ticksFromUs(_cfg.ompForkJoinUs);

    GatherResult res;
    res.start = start;
    res.lookups = batch.totalLookups();
    // Lookups resident in the hot-row cache tier (batch.cacheHit,
    // annotated before the backend runs) never touch the memory
    // system: their bytes drop out of the DRAM-side total.
    res.cachedLookups = batch.cachedLookups();
    res.bytesGathered =
        (res.lookups - res.cachedLookups) * vec_bytes;

    // PyTorch's EmbeddingBag runs tables as sequential operators and
    // parallelizes each over the batch dimension (at::parallel_for),
    // so thread-level parallelism scales with batch size - a central
    // reason small-batch inference underuses memory bandwidth
    // (Section III-C).
    const std::uint32_t threads =
        std::max<std::uint32_t>(1, std::min(_cfg.cores, batch.batch));
    res.threadsUsed = threads;
    const std::uint32_t chunk = (batch.batch + threads - 1) / threads;

    Tick table_start = start;
    std::uint64_t lookup_seq = 0;
    for (std::uint32_t t = 0; t < cfg.numTables; ++t) {
        // Operator dispatch plus (when multithreaded) pool wakeup.
        table_start += dispatch;
        if (threads > 1)
            table_start += fork_join;

        const auto &indices = batch.indices[t];
        const VirtualEmbeddingTable &table = model.table(t);

        // Flattened per-table invariants: the loop below runs once
        // per lookup, so the cache-tier hit mask (batch.rowCached
        // re-runs three bounds checks per call), the index-stream
        // base and the per-sample lookup count are hoisted here.
        const std::uint8_t *hit_mask =
            t < batch.cacheHit.size() ? batch.cacheHit[t].data()
                                      : nullptr;
        const std::size_t hit_mask_size =
            t < batch.cacheHit.size() ? batch.cacheHit[t].size() : 0;
        const Addr idx_base = layout.indexArrayBase + lookup_seq * 4;
        const std::uint32_t lookups_per_table = batch.lookupsPerTable;

        std::vector<ThreadCursor> cursor(threads);
        for (std::uint32_t th = 0; th < threads; ++th) {
            cursor[th].now = table_start;
            cursor[th].sample = std::min(th * chunk, batch.batch);
            cursor[th].sampleEnd =
                std::min((th + 1) * chunk, batch.batch);
        }

        // Process one lookup at a time on whichever thread's clock
        // is furthest behind: keeps the shared DRAM model's issue
        // stream in near-global time order so concurrent threads
        // contend realistically instead of serializing.
        for (;;) {
            ThreadCursor *tc = nullptr;
            for (auto &c : cursor)
                if (!c.done() && (!tc || c.now < tc->now))
                    tc = &c;
            if (!tc)
                break;

            const std::uint32_t b = tc->sample;
            const std::uint32_t j = tc->lookup;
            const std::size_t flat =
                static_cast<std::size_t>(b) * lookups_per_table + j;

            // Sparse-index fetch: a perfectly sequential 4 B stream.
            // The L2 stream prefetcher hides the DRAM round trip, so
            // cold lines cost DRAM bandwidth but only L2-ish latency
            // on the demand path.
            const Addr idx_addr =
                idx_base + static_cast<Addr>(flat) * 4;
            const auto idx_res = _hier.access(idx_addr);
            if (idx_res.level == HitLevel::Memory) {
                _dram.access(idx_addr, tc->now + idx_res.latency);
                tc->now += _hier.l2().hitLatency();
            }

            tc->now += lookup_instr_ticks;

            // A cache-tier hit skips the row's line fetches
            // entirely (the tier's own lookup cost is charged by
            // ComposedSystem); the index fetch and the per-lookup
            // instruction stream are still paid above.
            if (hit_mask && flat < hit_mask_size && hit_mask[flat]) {
                if (++tc->lookup == lookups_per_table) {
                    tc->lookup = 0;
                    ++tc->sample;
                    tc->now += store_ticks;
                }
                continue;
            }

            const std::uint64_t row = indices[flat];
            const Addr row_addr = table.rowAddr(row);
            for (std::uint32_t l = 0; l < lines_per_vec; ++l) {
                const Addr line = row_addr +
                                  static_cast<Addr>(l) *
                                      _hier.lineBytes();
                const auto acc = _hier.access(line);
                if (acc.level == HitLevel::Memory) {
                    if (tc->pending.size() >= _cfg.gatherWindowLines) {
                        tc->now =
                            std::max(tc->now, tc->pending.front());
                        tc->pending.pop_front();
                    }
                    const Tick done =
                        _dram.access(line, tc->now + acc.latency)
                            .completion;
                    tc->pending.push_back(done);
                } else {
                    // Cache hits pipeline behind the OOO window;
                    // charge a quarter of the load-to-use latency.
                    tc->now += acc.latency / 4;
                }
            }

            // Advance the cursor; at the end of a sample, charge the
            // reduced-vector writeback stores.
            if (++tc->lookup == batch.lookupsPerTable) {
                tc->lookup = 0;
                ++tc->sample;
                tc->now += store_ticks;
            }
        }

        Tick table_end = table_start;
        for (auto &c : cursor) {
            Tick end = c.now;
            for (Tick done : c.pending)
                end = std::max(end, done);
            table_end = std::max(table_end, end);
        }
        table_start = table_end;
        lookup_seq += indices.size();
    }

    res.end = table_start;
    res.instructions =
        res.lookups * (_cfg.instrPerLookup + _cfg.instrPerIndex) +
        static_cast<std::uint64_t>(cfg.numTables) *
            static_cast<std::uint64_t>(_cfg.dispatchUs *
                                       instr_per_sec / 1e6) +
        static_cast<std::uint64_t>(batch.batch) * cfg.numTables *
            cfg.embeddingDim / 8;
    res.llcAccesses = _hier.llc().accesses() - llc_acc0;
    res.llcMisses = _hier.llc().misses() - llc_miss0;
    return res;
}

} // namespace centaur
