#include "cpu/cpu_backend.hh"

#include <algorithm>

namespace centaur {

CpuGatherBackend::CpuGatherBackend(const CpuConfig &cpu,
                                   CacheHierarchy &hier,
                                   DramModel &dram,
                                   const ReferenceModel &model)
    : _cpu(cpu), _model(model), _gather(_cpu, hier, dram)
{
}

EmbStageTiming
CpuGatherBackend::run(const InferenceBatch &batch, Tick start,
                      InferenceResult &res)
{
    const GatherResult g = _gather.run(_model, batch, start);
    res.emb.instructions = g.instructions;
    res.emb.llcAccesses = g.llcAccesses;
    res.emb.llcMisses = g.llcMisses;

    // The gather's worker threads gang on the node's core pool and
    // its table traffic shares host DRAM bandwidth with every other
    // worker on the node; the stage completes when both grants do.
    // Cache-tier hits already dropped out of g.bytesGathered, so the
    // DRAM grant shrinks with the hit rate.
    Tick end = g.end;
    if (fabric()) {
        const Tick cores = charge(NodeResource::CpuCores, start,
                                  g.latency(), res, g.threadsUsed);
        const Tick dram =
            charge(NodeResource::HostDram, start,
                   fabric()->dramOccupancy(g.bytesGathered), res);
        end = std::max(cores, dram);
        // g.cachedLookups was counted once by the gather engine;
        // re-calling batch.cachedLookups() would re-scan the whole
        // per-lookup hit mask.
        res.cacheSavedTicks += fabric()->dramOccupancy(
            g.cachedLookups * _model.config().vectorBytes());
    }
    res.phase[static_cast<std::size_t>(Phase::Emb)] = end - start;
    res.effectiveEmbGBps = gbPerSec(g.bytesGathered, end - start);
    return {end, end};
}

CpuMlpBackend::CpuMlpBackend(const CpuConfig &cpu,
                             CacheHierarchy &hier, DramModel &dram,
                             const ReferenceModel &model)
    : _cpu(cpu), _model(model), _gemm(_cpu, hier, dram)
{
    // MLP weights are deployment-persistent and cache-warm
    // (Section III-B: MLP LLC miss rates stay below 20%).
    hier.warmRange(_model.layout().mlpWeightBase,
                   _model.config().mlpParamBytes());
}

Tick
CpuMlpBackend::runMlpStack(const std::vector<std::uint32_t> &dims,
                           std::uint32_t batch, Addr in_base,
                           Addr w_base, Tick start, InferenceResult &r)
{
    Tick now = start;
    Addr w_cursor = w_base;
    Addr act_cursor = in_base;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        const auto g = _gemm.run(batch, dims[l], dims[l + 1],
                                 act_cursor, w_cursor,
                                 _model.layout().outputBase, now);
        now = g.end;
        r.phase[static_cast<std::size_t>(Phase::Mlp)] += g.latency();
        r.mlp.instructions += g.instructions;
        r.mlp.llcAccesses += g.llcAccesses;
        r.mlp.llcMisses += g.llcMisses;
        w_cursor += 4ULL * (static_cast<std::uint64_t>(dims[l]) *
                                dims[l + 1] + dims[l + 1]);
        act_cursor = _model.layout().outputBase;
    }
    return now;
}

Tick
CpuMlpBackend::run(const InferenceBatch &batch,
                   const EmbStageTiming &in, InferenceResult &res)
{
    const DlrmConfig &cfg = _model.config();
    Tick now = std::max(in.embReady, in.denseReady);

    // ----- bottom MLP (MLP) -----
    now = runMlpStack(cfg.bottomLayerDims(), batch.batch,
                      _model.layout().denseFeatureBase,
                      _model.layout().mlpWeightBase, now, res);

    // ----- feature interaction (Other): batched R x R^T GEMM -----
    const std::uint32_t n_vec = cfg.numTables + 1;
    const auto inter = _gemm.run(batch.batch * n_vec,
                                 cfg.embeddingDim, n_vec,
                                 _model.layout().outputBase,
                                 _model.layout().outputBase,
                                 _model.layout().outputBase, now);
    now = inter.end;
    res.phase[static_cast<std::size_t>(Phase::Other)] +=
        inter.latency();

    // Concatenating 50+ reduced embedding tensors into the
    // interaction input is real framework work (torch.cat).
    const std::uint64_t concat_bytes =
        static_cast<std::uint64_t>(batch.batch) * n_vec *
        cfg.vectorBytes();
    const Tick concat = ticksFromUs(_cpu.dispatchUs) +
                        serializationTicks(concat_bytes, 40.0);
    now += concat;
    res.phase[static_cast<std::size_t>(Phase::Other)] += concat;

    // ----- top MLP (MLP) -----
    const std::uint64_t bottom_params =
        Mlp(1, cfg.bottomLayerDims()).paramCount();
    now = runMlpStack(cfg.topLayerDims(), batch.batch,
                      _model.layout().outputBase,
                      _model.layout().mlpWeightBase +
                          bottom_params * 4,
                      now, res);

    // ----- sigmoid + framework glue (Other) -----
    const Tick sigmoid = ticksFromUs(_cpu.dispatchUs) +
                         batch.batch * ticksFromNs(5.0);
    now += sigmoid;
    res.phase[static_cast<std::size_t>(Phase::Other)] += sigmoid;

    // The GEMM roofline assumes the whole socket: book the dense
    // stage on the node's core pool so co-located workers' MLP
    // stacks serialize instead of each seeing an idle socket.
    if (fabric()) {
        const Tick stage_start =
            std::max(in.embReady, in.denseReady);
        const Tick end = charge(NodeResource::CpuCores, stage_start,
                                now - stage_start, res, _cpu.cores);
        res.phase[static_cast<std::size_t>(Phase::Mlp)] += end - now;
        now = end;
    }

    return now;
}

} // namespace centaur
