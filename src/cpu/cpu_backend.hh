/**
 * @file
 * CPU stage backends for the composable system API: the embedding
 * gather stage (cpu/gather_engine) and the dense MLP stage
 * (cpu/gemm_model) as pluggable backends. Extracted from the former
 * monolithic CpuOnlySystem/CpuGpuSystem inference paths; a composed
 * "cpu" system reproduces CpuOnlySystem tick-for-tick.
 */

#ifndef CENTAUR_CPU_CPU_BACKEND_HH
#define CENTAUR_CPU_CPU_BACKEND_HH

#include "cache/hierarchy.hh"
#include "core/backend.hh"
#include "cpu/cpu_config.hh"
#include "cpu/gather_engine.hh"
#include "cpu/gemm_model.hh"
#include "mem/dram.hh"

namespace centaur {

/**
 * SparseLengthsSum on the Xeon: work items sharded across cores,
 * misses walking the shared cache hierarchy into DRAM.
 */
class CpuGatherBackend : public EmbeddingBackend
{
  public:
    CpuGatherBackend(const CpuConfig &cpu, CacheHierarchy &hier,
                     DramModel &dram, const ReferenceModel &model);

    EmbBackendKind kind() const override
    {
        return EmbBackendKind::CpuGather;
    }

    EmbStageTiming run(const InferenceBatch &batch, Tick start,
                       InferenceResult &res) override;

  private:
    CpuConfig _cpu;
    const ReferenceModel &_model;
    GatherEngine _gather;
};

/**
 * The dense stage on the Xeon: bottom MLP, interaction GEMM, concat
 * glue, top MLP and sigmoid, all through the AVX2 GEMM model.
 * Warms the MLP weight range on construction (deployment-persistent
 * weights, Section III-B), as CpuOnlySystem always did.
 */
class CpuMlpBackend : public MlpBackend
{
  public:
    CpuMlpBackend(const CpuConfig &cpu, CacheHierarchy &hier,
                  DramModel &dram, const ReferenceModel &model);

    MlpBackendKind kind() const override { return MlpBackendKind::Cpu; }

    Tick run(const InferenceBatch &batch, const EmbStageTiming &in,
             InferenceResult &res) override;

  private:
    Tick runMlpStack(const std::vector<std::uint32_t> &dims,
                     std::uint32_t batch, Addr in_base, Addr w_base,
                     Tick start, InferenceResult &r);

    CpuConfig _cpu;
    const ReferenceModel &_model;
    CpuGemmModel _gemm;
};

} // namespace centaur

#endif // CENTAUR_CPU_CPU_BACKEND_HH
