/**
 * @file
 * CPU-side embedding gather/reduce timing model (SparseLengthsSum).
 *
 * Work items are (table, sample) pairs sharded across OpenMP-style
 * threads, matching how the PyTorch backend parallelizes embedding
 * bags. Each thread walks its lookups through the cache hierarchy;
 * misses go to the shared DRAM model and at most
 * CpuConfig::gatherWindowLines misses overlap per thread - the
 * mechanism behind the paper's low effective-throughput findings.
 */

#ifndef CENTAUR_CPU_GATHER_ENGINE_HH
#define CENTAUR_CPU_GATHER_ENGINE_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "cpu/cpu_config.hh"
#include "dlrm/reference_model.hh"
#include "dlrm/workload.hh"
#include "mem/dram.hh"
#include "sim/units.hh"

namespace centaur {

/** Timing and cache statistics of one embedding-layer execution. */
struct GatherResult
{
    Tick start = 0;
    Tick end = 0;
    std::uint64_t lookups = 0;
    std::uint64_t cachedLookups = 0; //!< lookups served by the tier
    std::uint64_t bytesGathered = 0; //!< useful embedding bytes
    std::uint64_t instructions = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    std::uint32_t threadsUsed = 0;

    Tick latency() const { return end - start; }

    /** The paper's "effective memory throughput" metric (Sec III-C). */
    double
    effectiveGBps() const
    {
        return gbPerSec(bytesGathered, latency());
    }

    double
    llcMissRate() const
    {
        return llcAccesses ? static_cast<double>(llcMisses) /
                                 static_cast<double>(llcAccesses)
                           : 0.0;
    }

    double
    mpki() const
    {
        return instructions ? static_cast<double>(llcMisses) * 1000.0 /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * Executes the frontend embedding layers of a DLRM model on the CPU
 * timing model.
 */
class GatherEngine
{
  public:
    GatherEngine(const CpuConfig &cfg, CacheHierarchy &hierarchy,
                 DramModel &dram);

    /**
     * Run gathers + reductions for @p batch of @p model, starting at
     * @p start. Timing only; numerics come from the ReferenceModel.
     */
    GatherResult run(const ReferenceModel &model,
                     const InferenceBatch &batch, Tick start);

  private:
    const CpuConfig &_cfg;
    CacheHierarchy &_hier;
    DramModel &_dram;
};

} // namespace centaur

#endif // CENTAUR_CPU_GATHER_ENGINE_HH
