#include "power/power_model.hh"

#include "sim/log.hh"

namespace centaur {

const char *
designPointName(DesignPoint dp)
{
    switch (dp) {
      case DesignPoint::CpuOnly:
        return "CPU-only";
      case DesignPoint::CpuGpu:
        return "CPU-GPU";
      case DesignPoint::Centaur:
        return "Centaur";
    }
    return "unknown";
}

PowerModel::PowerModel(const PowerConfig &cfg) : _cfg(cfg)
{
}

double
PowerModel::watts(DesignPoint dp) const
{
    switch (dp) {
      case DesignPoint::CpuOnly:
        return _cfg.cpuOnlyWatts;
      case DesignPoint::CpuGpu:
        return _cfg.cpuGpuCpuWatts + _cfg.cpuGpuGpuWatts;
      case DesignPoint::Centaur:
        return _cfg.centaurWatts;
    }
    panic("unknown design point");
}

double
PowerModel::energyJoules(DesignPoint dp, Tick latency) const
{
    return watts(dp) * secFromTicks(latency);
}

double
PowerModel::efficiency(DesignPoint dp, Tick latency) const
{
    const double joules = energyJoules(dp, latency);
    return joules > 0.0 ? 1.0 / joules : 0.0;
}

} // namespace centaur
