/**
 * @file
 * Power and energy model calibrated to the paper's Table IV wall
 * measurements (pcm-power / nvprof): CPU-only 80 W, CPU-GPU
 * 91 W CPU + 56 W GPU, Centaur 74 W (CPU+FPGA socket + DIMMs).
 * Energy = power x end-to-end latency, the paper's own methodology.
 */

#ifndef CENTAUR_POWER_POWER_MODEL_HH
#define CENTAUR_POWER_POWER_MODEL_HH

#include <cstdint>
#include <string>

#include "sim/units.hh"

namespace centaur {

/** The three evaluated system design points. */
enum class DesignPoint : std::uint8_t
{
    CpuOnly = 0,
    CpuGpu = 1,
    Centaur = 2,
};

/** Human-readable design point name. */
const char *designPointName(DesignPoint dp);

/** Table IV wall-power numbers (watts). */
struct PowerConfig
{
    double cpuOnlyWatts = 80.0;
    double cpuGpuCpuWatts = 91.0;
    double cpuGpuGpuWatts = 56.0;
    double centaurWatts = 74.0;

    // ----- per-stage decomposition for composed specs -----
    // Used by core/backend.hh's specWatts() for backend pairings the
    // paper never measured; the paper's own three design points
    // always use the exact wall numbers above. Calibrated so the
    // additive splits are consistent with Table IV where they can
    // be: embCpu + mlpCpu = 80 W (CPU-only) and embFpga + mlpFpga =
    // 74 W (Centaur: mostly-idle host + socket FPGA + DIMMs). The
    // CPU-GPU point is *not* additive (91 W CPU + 56 W GPU includes
    // the host spinning on the CUDA driver), which is exactly why it
    // stays a measured override.
    double embCpuWatts = 50.0;  //!< Xeon running the gather loop
    double embGpuWatts = 78.0;  //!< GPU gather kernels + host memory
    double embFpgaWatts = 44.0; //!< idle host + EB-Streamer + DIMMs
    double mlpCpuWatts = 30.0;  //!< AVX2 GEMM share of the package
    double mlpGpuWatts = 69.0;  //!< V100 dense kernels + driver core
    double mlpFpgaWatts = 30.0; //!< dense PE complex
    /** Extra shell/board power for a PCIe-attached (non-package) FPGA. */
    double discreteFpgaBoardWatts = 21.0;
};

/**
 * Static power per design point and derived energy metrics.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConfig &cfg = PowerConfig{});

    /** Wall power while serving inference (watts). */
    double watts(DesignPoint dp) const;

    /** Energy for one inference of @p latency (joules). */
    double energyJoules(DesignPoint dp, Tick latency) const;

    /** Inferences per joule, the Fig 15(b) efficiency metric. */
    double efficiency(DesignPoint dp, Tick latency) const;

    const PowerConfig &config() const { return _cfg; }

  private:
    PowerConfig _cfg;
};

} // namespace centaur

#endif // CENTAUR_POWER_POWER_MODEL_HH
