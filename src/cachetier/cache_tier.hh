/**
 * @file
 * Hot-row embedding cache tier: a byte-budgeted software cache that
 * sits between the gather loop and the node's shared `host_dram` /
 * PCIe / NIC resources, converting workload skew (dlrm/workload.hh
 * zipf/trace streams) into saved occupancy on the fabric
 * (core/fabric.hh) and the cluster network (cluster/network.hh).
 *
 * The paper's Fig. 6 MPKI study (src/cache) shows embedding gathers
 * blow out every hardware cache level; this tier models the software
 * answer a serving system can actually deploy: an SRAM/HBM-class
 * near-compute store of hot rows. A `CacheTier` annotates each
 * InferenceBatch with a per-lookup hit mask *before* the stage
 * backends run; on a hit the backend skips the DRAM / PCIe / NIC
 * charge for that row and pays a small per-row lookup cost, on a
 * miss it pays the existing path while the tier does its fill
 * bookkeeping (admission + eviction).
 *
 * Pluggable policies behind one interface:
 *  - eviction: LRU, LFU (frequency with FIFO tie-break), or
 *    segmented LRU (probation/protected, 2-segment);
 *  - admission: always, or ghost-LRU filtered (a bounded ghost list
 *    of recently seen/evicted keys; a row is admitted only on its
 *    second touch, so one-hit wonders never displace hot rows).
 *
 * Determinism contract: accesses happen in request-id dispatch order
 * within one single-threaded simulation, every structure is ordered
 * (std::map / std::list / std::set - never unordered), and ties
 * break on insertion sequence numbers. Runs are byte-identical at
 * any `--jobs` because suite points own independent tiers.
 *
 * The spec grammar suffix (`.../cache:<mb>[:<lru|lfu|slru>[:ghost]]`)
 * parsed here is shared by single-node specs (core/backend.hh) and
 * `cluster:` specs (cluster/cluster_spec.hh).
 */

#ifndef CENTAUR_CACHETIER_CACHE_TIER_HH
#define CENTAUR_CACHETIER_CACHE_TIER_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace centaur {

struct InferenceBatch;

/** Eviction policy of the hot-row tier. */
enum class CachePolicy : std::uint8_t
{
    Lru = 0,  //!< least-recently-used
    Lfu = 1,  //!< least-frequently-used, FIFO tie-break
    Slru = 2, //!< segmented LRU (probation + protected)
};

/** Stable grammar/report token of a policy. */
const char *cachePolicyName(CachePolicy p);

/** Cache-tier knobs, carried inside SystemSpec / ClusterSpec. */
struct CacheTierConfig
{
    /** Byte budget in MiB; 0 disables the tier entirely. */
    double capacityMB = 0.0;
    CachePolicy policy = CachePolicy::Lru;
    /** Ghost-LRU admission filter (admit on second touch). */
    bool ghost = false;
    /** Per-cached-row lookup cost (SRAM/HBM-class). */
    double lookupNs = 1.0;

    bool enabled() const { return capacityMB > 0.0; }

    bool
    operator==(const CacheTierConfig &o) const
    {
        return capacityMB == o.capacityMB && policy == o.policy &&
               ghost == o.ghost && lookupNs == o.lookupNs;
    }
    bool operator!=(const CacheTierConfig &o) const
    {
        return !(*this == o);
    }
};

/**
 * Grammar of the cache part of a backend / cluster spec:
 * `cache:<mb>[:<lru|lfu|slru>[:ghost]]`.
 */
const char *cacheTierGrammar();

/** Copy-paste-ready example cache parts for --list. */
std::vector<std::string> exampleCacheParts();

/**
 * Parse one `cache:...` spec part. Returns false and (optionally)
 * fills @p error with a token-naming message on malformed input.
 * `cache:0` (any policy) normalizes to the disabled default config,
 * so a zero-budget tier is byte-identical to no tier at all.
 */
bool tryParseCachePart(const std::string &part, CacheTierConfig *out,
                       std::string *error);

/**
 * Canonical spec-part name; empty for a disabled config. Default
 * policy/admission tokens are omitted (`cache:64`, `cache:64:lfu`,
 * `cache:64:slru:ghost`).
 */
std::string cachePartName(const CacheTierConfig &cfg);

/** Counters of one cache tier, snapshotted for reports. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /** Fills declined by the ghost admission filter. */
    std::uint64_t rejectedFills = 0;
    /** Bytes resident at snapshot time (entries x row bytes). */
    std::uint64_t bytesResident = 0;
    /** Fabric/NIC occupancy the hits avoided, in microseconds. */
    double fabricSavedUs = 0.0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    CacheStats &operator+=(const CacheStats &o);
};

/**
 * Eviction-policy interface: an ordered set of resident row keys
 * with policy-specific recency/frequency bookkeeping. Keys are
 * `(table << 32) | row`. Implementations live in cache_tier.cc and
 * are selected by CacheTierConfig::policy.
 */
class RowCachePolicy
{
  public:
    virtual ~RowCachePolicy() = default;

    virtual bool contains(std::uint64_t key) const = 0;
    /** Record a hit on a resident key. */
    virtual void touch(std::uint64_t key) = 0;
    /** Insert a non-resident key (capacity ensured by caller). */
    virtual void insert(std::uint64_t key) = 0;
    /** Remove and return the victim key. */
    virtual std::uint64_t evict() = 0;
    virtual std::size_t size() const = 0;
    /** Resident keys in ascending key order (tests/debug). */
    virtual std::vector<std::uint64_t> keys() const = 0;
};

/**
 * One hot-row cache tier. Shared by every worker of a node (like
 * the Fabric): accesses arrive in dispatch order from the node's
 * single-threaded simulation, so the fill/evict stream is
 * deterministic. Row granularity: every entry costs exactly
 * @p row_bytes (the model's embedding vector size).
 */
class CacheTier
{
  public:
    CacheTier(const CacheTierConfig &cfg, std::uint32_t row_bytes);
    ~CacheTier();

    CacheTier(const CacheTier &) = delete;
    CacheTier &operator=(const CacheTier &) = delete;

    /** Per-batch access outcome. */
    struct Access
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        /** hits x row bytes: fabric bytes the backends may skip. */
        std::uint64_t hitBytes = 0;
    };

    /**
     * Look up every sparse index of @p batch in table-major, then
     * flat-lookup order, filling batch.cacheHit (1 = resident before
     * this batch touched it) and running fills/evictions for the
     * misses. A row missed early in the batch is admitted
     * immediately, so a duplicate later in the same batch hits.
     */
    Access annotate(const InferenceBatch &batch);

    /** Hit-path lookup cost for @p rows cached rows. */
    Tick
    lookupTicks(std::uint64_t rows) const
    {
        return ticksFromNs(_cfg.lookupNs *
                           static_cast<double>(rows));
    }

    /** Accumulate fabric/NIC occupancy avoided by hits. */
    void recordSavedTicks(Tick t) { _savedTicks += t; }

    /** Snapshot the counters (bytesResident is current residency). */
    CacheStats stats() const;

    const CacheTierConfig &config() const { return _cfg; }
    std::uint32_t rowBytes() const { return _rowBytes; }
    std::uint64_t capacityRows() const { return _maxRows; }

    /** Resident keys in ascending key order (tests). */
    std::vector<std::uint64_t> residentKeys() const;

    /** Drop all entries, ghost state and counters. */
    void reset();

  private:
    /** Admission decision for a missed key; updates ghost state. */
    bool admit(std::uint64_t key);
    void ghostInsert(std::uint64_t key);

    CacheTierConfig _cfg;
    std::uint32_t _rowBytes;
    std::uint64_t _maxRows;
    std::unique_ptr<RowCachePolicy> _policy;

    /** Ghost LRU of recently seen-but-unadmitted / evicted keys. */
    std::list<std::uint64_t> _ghostList;
    std::map<std::uint64_t, std::list<std::uint64_t>::iterator>
        _ghostMap;
    std::uint64_t _ghostCap = 0;

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
    std::uint64_t _rejectedFills = 0;
    Tick _savedTicks = 0;
};

} // namespace centaur

#endif // CENTAUR_CACHETIER_CACHE_TIER_HH
