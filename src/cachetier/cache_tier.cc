#include "cachetier/cache_tier.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <tuple>

#include "dlrm/workload.hh"

namespace centaur {

namespace {

constexpr const char *kGrammar =
    "cache:<mb>[:<lru|lfu|slru>[:ghost]]";

/** Format a double the way the spec grammar writes it (%g). */
std::string
formatNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

bool
failWith(std::string *error, const std::string &part,
         const std::string &why)
{
    if (error)
        *error = "bad cache spec '" + part + "': " + why +
                 "; grammar: " + kGrammar;
    return false;
}

/** strtod over the whole token; rejects trailing garbage. */
bool
parseNumber(const std::string &token, double *out)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
        return false;
    *out = v;
    return true;
}

// ------------------------------------------------------------------
// Eviction policies.
// ------------------------------------------------------------------

/** Plain LRU: recency list (front = MRU) + key -> node map. */
class LruPolicy final : public RowCachePolicy
{
  public:
    bool
    contains(std::uint64_t key) const override
    {
        return _map.find(key) != _map.end();
    }

    void
    touch(std::uint64_t key) override
    {
        auto it = _map.find(key);
        _list.splice(_list.begin(), _list, it->second);
    }

    void
    insert(std::uint64_t key) override
    {
        _list.push_front(key);
        _map.emplace(key, _list.begin());
    }

    std::uint64_t
    evict() override
    {
        const std::uint64_t victim = _list.back();
        _map.erase(victim);
        _list.pop_back();
        return victim;
    }

    std::size_t size() const override { return _map.size(); }

    std::vector<std::uint64_t>
    keys() const override
    {
        std::vector<std::uint64_t> out;
        out.reserve(_map.size());
        for (const auto &kv : _map)
            out.push_back(kv.first);
        return out;
    }

  private:
    std::list<std::uint64_t> _list;
    std::map<std::uint64_t, std::list<std::uint64_t>::iterator> _map;
};

/**
 * LFU with FIFO tie-break: victims are the lowest-frequency keys,
 * oldest insertion first. The eviction order lives in an ordered
 * set of (freq, seq, key) tuples, so every choice is total-ordered
 * and deterministic.
 */
class LfuPolicy final : public RowCachePolicy
{
  public:
    bool
    contains(std::uint64_t key) const override
    {
        return _map.find(key) != _map.end();
    }

    void
    touch(std::uint64_t key) override
    {
        auto it = _map.find(key);
        _order.erase({it->second.freq, it->second.seq, key});
        ++it->second.freq;
        _order.insert({it->second.freq, it->second.seq, key});
    }

    void
    insert(std::uint64_t key) override
    {
        const Node node{1, ++_seq};
        _map.emplace(key, node);
        _order.insert({node.freq, node.seq, key});
    }

    std::uint64_t
    evict() override
    {
        const auto victim = *_order.begin();
        _order.erase(_order.begin());
        _map.erase(std::get<2>(victim));
        return std::get<2>(victim);
    }

    std::size_t size() const override { return _map.size(); }

    std::vector<std::uint64_t>
    keys() const override
    {
        std::vector<std::uint64_t> out;
        out.reserve(_map.size());
        for (const auto &kv : _map)
            out.push_back(kv.first);
        return out;
    }

  private:
    struct Node
    {
        std::uint64_t freq;
        std::uint64_t seq;
    };

    std::map<std::uint64_t, Node> _map;
    std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>>
        _order;
    std::uint64_t _seq = 0;
};

/**
 * Segmented LRU: new rows enter a probation segment; a hit promotes
 * into a protected segment capped at 4/5 of the resident entries,
 * demoting the protected LRU back to probation MRU when full.
 * Victims come from the probation tail (protected tail only when
 * probation is empty), so scan traffic cannot flush proven-hot rows.
 */
class SlruPolicy final : public RowCachePolicy
{
  public:
    bool
    contains(std::uint64_t key) const override
    {
        return _map.find(key) != _map.end();
    }

    void
    touch(std::uint64_t key) override
    {
        auto it = _map.find(key);
        if (it->second.protectedSeg) {
            _protected.splice(_protected.begin(), _protected,
                              it->second.node);
            return;
        }
        // Promote probation -> protected.
        _protected.splice(_protected.begin(), _probation,
                          it->second.node);
        it->second.protectedSeg = true;
        const std::size_t cap =
            std::max<std::size_t>(1, size() * 4 / 5);
        if (_protected.size() > cap) {
            // Demote the protected LRU back to probation MRU.
            auto demoted = std::prev(_protected.end());
            _probation.splice(_probation.begin(), _protected,
                              demoted);
            _map.find(*demoted)->second.protectedSeg = false;
        }
    }

    void
    insert(std::uint64_t key) override
    {
        _probation.push_front(key);
        _map.emplace(key, Node{_probation.begin(), false});
    }

    std::uint64_t
    evict() override
    {
        std::list<std::uint64_t> &seg =
            _probation.empty() ? _protected : _probation;
        const std::uint64_t victim = seg.back();
        _map.erase(victim);
        seg.pop_back();
        return victim;
    }

    std::size_t size() const override { return _map.size(); }

    std::vector<std::uint64_t>
    keys() const override
    {
        std::vector<std::uint64_t> out;
        out.reserve(_map.size());
        for (const auto &kv : _map)
            out.push_back(kv.first);
        return out;
    }

  private:
    struct Node
    {
        std::list<std::uint64_t>::iterator node;
        bool protectedSeg;
    };

    std::list<std::uint64_t> _probation;
    std::list<std::uint64_t> _protected;
    std::map<std::uint64_t, Node> _map;
};

std::unique_ptr<RowCachePolicy>
makePolicy(CachePolicy p)
{
    switch (p) {
    case CachePolicy::Lfu:
        return std::make_unique<LfuPolicy>();
    case CachePolicy::Slru:
        return std::make_unique<SlruPolicy>();
    case CachePolicy::Lru:
    default:
        return std::make_unique<LruPolicy>();
    }
}

} // namespace

const char *
cachePolicyName(CachePolicy p)
{
    switch (p) {
    case CachePolicy::Lfu:
        return "lfu";
    case CachePolicy::Slru:
        return "slru";
    case CachePolicy::Lru:
    default:
        return "lru";
    }
}

const char *
cacheTierGrammar()
{
    return kGrammar;
}

std::vector<std::string>
exampleCacheParts()
{
    return {
        "cache:64",
        "cache:16:lfu",
        "cache:32:slru:ghost",
    };
}

bool
tryParseCachePart(const std::string &part, CacheTierConfig *out,
                  std::string *error)
{
    static const std::string prefix = "cache:";
    if (part.compare(0, prefix.size(), prefix) != 0)
        return failWith(error, part, "expected 'cache:' prefix");

    // Split the payload on ':' into at most three tokens.
    std::vector<std::string> tokens;
    std::size_t pos = prefix.size();
    while (pos <= part.size()) {
        const std::size_t next = part.find(':', pos);
        if (next == std::string::npos) {
            tokens.push_back(part.substr(pos));
            break;
        }
        tokens.push_back(part.substr(pos, next - pos));
        pos = next + 1;
    }
    if (tokens.empty() || tokens[0].empty())
        return failWith(error, part, "missing <mb> budget");
    if (tokens.size() > 3)
        return failWith(error, part,
                        "too many ':' fields (at most "
                        "<mb>:<policy>:ghost)");

    CacheTierConfig cfg;
    double mb = 0.0;
    if (!parseNumber(tokens[0], &mb) || mb < 0.0)
        return failWith(error, part,
                        "bad <mb> budget '" + tokens[0] +
                            "' (non-negative number)");
    cfg.capacityMB = mb;

    if (tokens.size() >= 2) {
        const std::string &policy = tokens[1];
        if (policy == "lru")
            cfg.policy = CachePolicy::Lru;
        else if (policy == "lfu")
            cfg.policy = CachePolicy::Lfu;
        else if (policy == "slru")
            cfg.policy = CachePolicy::Slru;
        else
            return failWith(error, part,
                            "unknown policy '" + policy +
                                "' (lru | lfu | slru)");
    }
    if (tokens.size() == 3) {
        if (tokens[2] != "ghost")
            return failWith(error, part,
                            "unknown admission token '" + tokens[2] +
                                "' (ghost)");
        cfg.ghost = true;
    }

    // A zero budget is "no tier": normalize to the disabled default
    // so cache:0 specs stay byte-identical to their no-cache twins.
    if (out)
        *out = cfg.enabled() ? cfg : CacheTierConfig{};
    return true;
}

std::string
cachePartName(const CacheTierConfig &cfg)
{
    if (!cfg.enabled())
        return "";
    std::string name = "cache:" + formatNumber(cfg.capacityMB);
    if (cfg.policy != CachePolicy::Lru || cfg.ghost)
        name += std::string(":") + cachePolicyName(cfg.policy);
    if (cfg.ghost)
        name += ":ghost";
    return name;
}

CacheStats &
CacheStats::operator+=(const CacheStats &o)
{
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    rejectedFills += o.rejectedFills;
    bytesResident += o.bytesResident;
    fabricSavedUs += o.fabricSavedUs;
    return *this;
}

// ------------------------------------------------------------------
// CacheTier.
// ------------------------------------------------------------------

CacheTier::CacheTier(const CacheTierConfig &cfg,
                     std::uint32_t row_bytes)
    : _cfg(cfg), _rowBytes(std::max<std::uint32_t>(1, row_bytes)),
      _maxRows(static_cast<std::uint64_t>(
                   cfg.capacityMB *
                   static_cast<double>(kMiB)) /
               _rowBytes),
      _policy(makePolicy(cfg.policy)), _ghostCap(_maxRows)
{
}

CacheTier::~CacheTier() = default;

bool
CacheTier::admit(std::uint64_t key)
{
    if (!_cfg.ghost)
        return true;
    auto it = _ghostMap.find(key);
    if (it != _ghostMap.end()) {
        // Second touch inside the ghost window: admit for real.
        _ghostList.erase(it->second);
        _ghostMap.erase(it);
        return true;
    }
    ghostInsert(key);
    ++_rejectedFills;
    return false;
}

void
CacheTier::ghostInsert(std::uint64_t key)
{
    if (_ghostCap == 0)
        return;
    auto it = _ghostMap.find(key);
    if (it != _ghostMap.end()) {
        _ghostList.splice(_ghostList.begin(), _ghostList,
                          it->second);
        return;
    }
    _ghostList.push_front(key);
    _ghostMap.emplace(key, _ghostList.begin());
    if (_ghostMap.size() > _ghostCap) {
        _ghostMap.erase(_ghostList.back());
        _ghostList.pop_back();
    }
}

CacheTier::Access
CacheTier::annotate(const InferenceBatch &batch)
{
    Access acc;
    batch.cacheHit.assign(batch.indices.size(), {});
    if (_maxRows == 0) {
        // Enabled-but-smaller-than-one-row budgets behave as a
        // pass-through: every lookup misses, nothing fills.
        for (std::size_t t = 0; t < batch.indices.size(); ++t) {
            batch.cacheHit[t].assign(batch.indices[t].size(), 0);
            acc.misses += batch.indices[t].size();
        }
        _misses += acc.misses;
        return acc;
    }
    for (std::size_t t = 0; t < batch.indices.size(); ++t) {
        const std::vector<std::uint64_t> &rows = batch.indices[t];
        std::vector<std::uint8_t> &mask = batch.cacheHit[t];
        mask.assign(rows.size(), 0);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(t) << 32) |
                (rows[i] & 0xffffffffULL);
            if (_policy->contains(key)) {
                _policy->touch(key);
                mask[i] = 1;
                ++acc.hits;
                continue;
            }
            ++acc.misses;
            if (!admit(key))
                continue;
            while (_policy->size() >= _maxRows) {
                const std::uint64_t victim = _policy->evict();
                ++_evictions;
                if (_cfg.ghost)
                    ghostInsert(victim);
            }
            _policy->insert(key);
        }
    }
    _hits += acc.hits;
    _misses += acc.misses;
    acc.hitBytes = acc.hits * _rowBytes;
    return acc;
}

CacheStats
CacheTier::stats() const
{
    CacheStats s;
    s.hits = _hits;
    s.misses = _misses;
    s.evictions = _evictions;
    s.rejectedFills = _rejectedFills;
    s.bytesResident = _policy->size() * _rowBytes;
    s.fabricSavedUs = usFromTicks(_savedTicks);
    return s;
}

std::vector<std::uint64_t>
CacheTier::residentKeys() const
{
    std::vector<std::uint64_t> keys = _policy->keys();
    std::sort(keys.begin(), keys.end());
    return keys;
}

void
CacheTier::reset()
{
    _policy = makePolicy(_cfg.policy);
    _ghostList.clear();
    _ghostMap.clear();
    _hits = _misses = _evictions = _rejectedFills = 0;
    _savedTicks = 0;
}

} // namespace centaur
