/**
 * @file
 * JSON serialization of the cache tier's counters (schema v1.5).
 * Lives next to the subsystem it describes so the schema-sync lint
 * (tools/centaur_lint.py) can cross-check every emitted key against
 * tools/check_bench.py's classification tables.
 */

#include "cachetier/cache_report.hh"

namespace centaur {

Json
toJson(const CacheStats &cs)
{
    Json j = Json::object();
    j["hits"] = cs.hits;
    j["misses"] = cs.misses;
    j["evictions"] = cs.evictions;
    j["rejected_fills"] = cs.rejectedFills;
    j["hit_rate"] = cs.hitRate();
    j["bytes_resident"] = cs.bytesResident;
    j["fabric_saved_us"] = cs.fabricSavedUs;
    return j;
}

} // namespace centaur
