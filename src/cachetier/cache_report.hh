/**
 * @file
 * JSON serializer for CacheStats, shared by the single-node
 * (core/report.cc) and cluster (cluster/report.cc) report surfaces.
 */

#ifndef CENTAUR_CACHETIER_CACHE_REPORT_HH
#define CENTAUR_CACHETIER_CACHE_REPORT_HH

#include "cachetier/cache_tier.hh"
#include "sim/json.hh"

namespace centaur {

/** Cache-tier counters: hits/misses/evictions/hit-rate/residency. */
Json toJson(const CacheStats &cs);

} // namespace centaur

#endif // CENTAUR_CACHETIER_CACHE_REPORT_HH
