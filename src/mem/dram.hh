/**
 * @file
 * DDR4 main-memory timing model.
 *
 * Models per-bank row-buffer state (open row, precharge/activate/CAS
 * latencies) and per-channel data-bus serialization. The configuration
 * defaults approximate the paper's evaluation platform: a Broadwell
 * Xeon E5-2680v4 socket with 4 channels of DDR4-2400 (about 77 GB/s
 * peak, 8 KB row buffers - both numbers the paper quotes directly).
 */

#ifndef CENTAUR_MEM_DRAM_HH
#define CENTAUR_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "mem/address_map.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"
#include "sim/units.hh"

namespace centaur {

/** DDR4 organization and timing parameters. */
struct DramConfig
{
    std::uint32_t channels = 4;
    std::uint32_t ranksPerChannel = 2;
    std::uint32_t banksPerRank = 16;
    std::uint32_t rowBytes = 8192; //!< 8 KB row buffer (paper Sec III-C)
    std::uint32_t lineBytes = 64;

    double tCkNs = 0.833;  //!< DDR4-2400 clock period
    double tRcdNs = 14.16; //!< activate-to-CAS
    double tCasNs = 14.16; //!< CAS-to-first-data
    double tRpNs = 14.16;  //!< precharge
    /**
     * Data burst for one 64 B line: BL8 over a DDR bus, i.e. 4 bus
     * clocks = 3.33 ns, giving 19.2 GB/s per channel and 76.8 GB/s
     * across 4 channels.
     */
    double burstNs = 3.33;

    /** Front-end queueing/controller pipeline per request. */
    double controllerNs = 30.0;

    /**
     * All-bank refresh: every tREFI the channel stalls for tRFC
     * (DDR4 8 Gb: 7.8 us / 350 ns). Set tRefiNs to 0 to disable.
     */
    double tRefiNs = 7800.0;
    double tRfcNs = 350.0;

    std::uint32_t banksPerChannel() const
    {
        return ranksPerChannel * banksPerRank;
    }

    std::uint32_t linesPerRow() const { return rowBytes / lineBytes; }

    double
    peakBandwidthGBps() const
    {
        return static_cast<double>(lineBytes) / burstNs *
               static_cast<double>(channels);
    }
};

/** Result of one line access against the DRAM model. */
struct DramAccessResult
{
    Tick completion = 0;  //!< tick the critical word is delivered
    bool rowHit = false;  //!< open-row hit
    bool rowOpen = false; //!< bank had some (other) row open
};

/**
 * Batch-latency DRAM model.
 *
 * Callers submit line-granularity reads with an issue tick; the model
 * resolves bank and data-bus contention against internal busy-until
 * clocks and returns the completion tick. Callers are expected to
 * submit requests in (approximately) nondecreasing issue order, which
 * all centaur-sim requestors do.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg = DramConfig{});

    /** Access one 64 B line. */
    DramAccessResult access(Addr addr, Tick issue);

    /**
     * Access a contiguous @p bytes-long region starting at @p addr.
     * @return completion tick of the last line.
     */
    Tick accessRange(Addr addr, std::uint64_t bytes, Tick issue);

    /** Reset bank/bus state and statistics. */
    void reset();

    const DramConfig &config() const { return _cfg; }
    const AddressMap &addressMap() const { return _map; }
    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    std::uint64_t reads() const { return _reads; }
    std::uint64_t rowHits() const { return _rowHits; }

    double
    rowHitRate() const
    {
        return _reads ? static_cast<double>(_rowHits) /
                            static_cast<double>(_reads)
                      : 0.0;
    }

  private:
    struct BankState
    {
        bool open = false;
        std::uint64_t openRow = 0;
        Tick readyAt = 0; //!< earliest next command
    };

    DramConfig _cfg;
    AddressMap _map;
    std::vector<std::vector<BankState>> _banks; //!< [channel][bank]
    std::vector<ResourceClock> _bus;            //!< data bus per channel

    Tick _tRcd;
    Tick _tCas;
    Tick _tRp;
    Tick _burst;
    Tick _controller;
    Tick _tRefi;
    Tick _tRfc;

    std::uint64_t _reads = 0;
    std::uint64_t _rowHits = 0;
    StatGroup _stats{"dram"};
};

} // namespace centaur

#endif // CENTAUR_MEM_DRAM_HH
