/**
 * @file
 * Physical-address to DRAM coordinate mapping (channel, bank, row,
 * column) with XOR-permuted channel/bank selection to spread sparse
 * embedding-gather streams across banks.
 */

#ifndef CENTAUR_MEM_ADDRESS_MAP_HH
#define CENTAUR_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "sim/units.hh"

namespace centaur {

/** DRAM coordinates of a cache-line-sized access. */
struct DramCoord
{
    std::uint32_t channel;
    std::uint32_t bank; //!< flat (rank x bank) index within a channel
    std::uint64_t row;
    std::uint32_t column; //!< line index within the row buffer

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && bank == o.bank && row == o.row &&
               column == o.column;
    }
};

/**
 * Interleaves 64 B lines across channels, then splits the per-channel
 * line index into column / bank / row fields. Bank bits are XOR-folded
 * with low row bits so that large power-of-two strides (common when a
 * table's row pitch is a power of two) still spread across banks.
 */
class AddressMap
{
  public:
    AddressMap(std::uint32_t channels, std::uint32_t banks_per_channel,
               std::uint32_t lines_per_row)
        : _channels(channels), _banks(banks_per_channel),
          _linesPerRow(lines_per_row)
    {
    }

    DramCoord
    map(Addr addr) const
    {
        const std::uint64_t line = addr / 64;
        const auto channel =
            static_cast<std::uint32_t>((line ^ (line >> 7)) % _channels);
        const std::uint64_t chan_line = line / _channels;
        const auto column =
            static_cast<std::uint32_t>(chan_line % _linesPerRow);
        const std::uint64_t row_major = chan_line / _linesPerRow;
        const std::uint64_t row = row_major / _banks;
        const auto bank = static_cast<std::uint32_t>(
            (row_major ^ row) % _banks);
        return DramCoord{channel, bank, row, column};
    }

    std::uint32_t channels() const { return _channels; }
    std::uint32_t banksPerChannel() const { return _banks; }
    std::uint32_t linesPerRow() const { return _linesPerRow; }

  private:
    std::uint32_t _channels;
    std::uint32_t _banks;
    std::uint32_t _linesPerRow;
};

} // namespace centaur

#endif // CENTAUR_MEM_ADDRESS_MAP_HH
