#include "mem/dram.hh"

#include <algorithm>

namespace centaur {

DramModel::DramModel(const DramConfig &cfg)
    : _cfg(cfg),
      _map(cfg.channels, cfg.banksPerChannel(), cfg.linesPerRow()),
      _banks(cfg.channels,
             std::vector<BankState>(cfg.banksPerChannel())),
      _tRcd(ticksFromNs(cfg.tRcdNs)),
      _tCas(ticksFromNs(cfg.tCasNs)), _tRp(ticksFromNs(cfg.tRpNs)),
      _burst(ticksFromNs(cfg.burstNs)),
      _controller(ticksFromNs(cfg.controllerNs)),
      _tRefi(ticksFromNs(cfg.tRefiNs)), _tRfc(ticksFromNs(cfg.tRfcNs))
{
    _bus.reserve(cfg.channels);
    for (std::uint32_t ch = 0; ch < cfg.channels; ++ch)
        _bus.emplace_back("dram.ch" + std::to_string(ch) + ".bus");
}

DramAccessResult
DramModel::access(Addr addr, Tick issue)
{
    const DramCoord coord = _map.map(addr);
    BankState &bank = _banks[coord.channel][coord.bank];

    Tick start = std::max(issue + _controller, bank.readyAt);

    // All-bank refresh: commands arriving during the tRFC window at
    // the tail of each tREFI period wait it out; refresh also closes
    // every row buffer.
    if (_tRefi > 0) {
        const Tick period_end = (start / _tRefi + 1) * _tRefi;
        if (start >= period_end - _tRfc) {
            start = period_end;
            bank.open = false;
        }
    }

    DramAccessResult res;
    res.rowOpen = bank.open;
    Tick cas_issued;
    if (bank.open && bank.openRow == coord.row) {
        res.rowHit = true;
        cas_issued = start;
    } else if (bank.open) {
        // Precharge the open row, activate the new one.
        cas_issued = start + _tRp + _tRcd;
    } else {
        cas_issued = start + _tRcd;
    }
    bank.open = true;
    bank.openRow = coord.row;

    const Tick done =
        _bus[coord.channel].acquire(cas_issued + _tCas, _burst).end;
    // The bank frees once the column access completes into the row
    // buffer; data-bus scheduling is independent of bank occupancy.
    bank.readyAt = cas_issued + _burst;

    ++_reads;
    if (res.rowHit)
        ++_rowHits;
    _stats.scalar("bytes") += static_cast<double>(_cfg.lineBytes);
    _stats.average("latency_ns").sample(nsFromTicks(done - issue));

    res.completion = done;
    return res;
}

Tick
DramModel::accessRange(Addr addr, std::uint64_t bytes, Tick issue)
{
    if (bytes == 0)
        return issue;
    const Addr first = addr / _cfg.lineBytes;
    const Addr last = (addr + bytes - 1) / _cfg.lineBytes;
    Tick done = issue;
    for (Addr line = first; line <= last; ++line)
        done = std::max(done,
                        access(line * _cfg.lineBytes, issue).completion);
    return done;
}

void
DramModel::reset()
{
    for (auto &channel : _banks)
        std::fill(channel.begin(), channel.end(), BankState{});
    for (ResourceClock &bus : _bus)
        bus.reset();
    _reads = 0;
    _rowHits = 0;
    _stats.resetAll();
}

} // namespace centaur
