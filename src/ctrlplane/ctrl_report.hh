/**
 * @file
 * JSON serializers for the control plane's outcome records
 * (CtrlStats, SloClassStats), shared by the single-node
 * (core/report.cc) and cluster (cluster/report.cc) report surfaces.
 */

#ifndef CENTAUR_CTRLPLANE_CTRL_REPORT_HH
#define CENTAUR_CTRLPLANE_CTRL_REPORT_HH

#include "ctrlplane/controllers.hh"
#include "sim/json.hh"

namespace centaur {

/** Per-SLO-class serving outcome: target, p99, attainment. */
Json toJson(const SloClassStats &cs);

/** Control-plane counters: window trajectory, hedging, scaling. */
Json toJson(const CtrlStats &cs);

} // namespace centaur

#endif // CENTAUR_CTRLPLANE_CTRL_REPORT_HH
