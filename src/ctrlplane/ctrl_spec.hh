/**
 * @file
 * Control-plane policy grammar - the closed-loop mirror of the
 * cache-tier suffix grammar (cachetier/cache_tier.hh).
 *
 * A ctrl part names which controllers close the serving loop:
 *
 *   ctrl:<fixed|adaptive>[:hedge[:<q>]][:scale[:<lo>-<hi>]]
 *
 *   fixed | adaptive   the coalescing-window policy: fixed keeps the
 *                      configured window (the open-loop engine),
 *                      adaptive runs the PID-style batcher against
 *                      queue depth and per-class p99-vs-target error
 *   hedge[:<q>]        duplicate straggler dispatches after the
 *                      observed service-time quantile <q> (default
 *                      0.95); first completion wins, the loser's
 *                      residual occupancy is cancelled
 *   scale[:<lo>-<hi>]  drain/re-add workers (cluster: whole nodes)
 *                      when interval utilization leaves the
 *                      [<lo>,<hi>] band (default 0.3-0.8)
 *
 * Examples: "ctrl:adaptive", "ctrl:fixed:hedge:0.99",
 * "ctrl:adaptive:hedge:0.95:scale:0.3-0.8". "ctrl:fixed" alone is
 * the default everywhere and parses to a disabled config, so specs
 * that never mention ctrl stay byte-identical to the open-loop
 * engine.
 *
 * The part rides on backend spec strings ("cpu/ctrl:adaptive") and
 * cluster specs ("cluster:4x(cpu)/ctrl:adaptive:hedge"); a ctrl part
 * on the cluster grammar wins over one on the inner node spec (same
 * precedence rule as /cache:).
 */

#ifndef CENTAUR_CTRLPLANE_CTRL_SPEC_HH
#define CENTAUR_CTRLPLANE_CTRL_SPEC_HH

#include <string>
#include <vector>

namespace centaur {

/** Which controllers close the serving loop (parsed ctrl part). */
struct CtrlConfig
{
    /** Adaptive coalescing-window batcher (false = fixed window). */
    bool adaptive = false;

    /** Hedge straggler dispatches onto a second worker/node. */
    bool hedge = false;
    /** Service-time quantile that arms a hedge (0 < q < 1). */
    double hedgeQuantile = 0.95;

    /** Autoscale workers/nodes on the utilization band below. */
    bool scale = false;
    double scaleLoUtil = 0.3; //!< drain below this utilization
    double scaleHiUtil = 0.8; //!< re-add above this utilization

    /** Any controller beyond the open-loop default? */
    bool
    enabled() const
    {
        return adaptive || hedge || scale;
    }

    bool
    operator==(const CtrlConfig &o) const
    {
        return adaptive == o.adaptive && hedge == o.hedge &&
               hedgeQuantile == o.hedgeQuantile && scale == o.scale &&
               scaleLoUtil == o.scaleLoUtil &&
               scaleHiUtil == o.scaleHiUtil;
    }
    bool
    operator!=(const CtrlConfig &o) const
    {
        return !(*this == o);
    }
};

/**
 * Parse one "ctrl:..." part (no leading '/'). Returns false and
 * fills @p error (when non-null) with a message naming the offending
 * token and the grammar; true fills @p out.
 */
bool tryParseCtrlPart(const std::string &part, CtrlConfig *out,
                      std::string *error = nullptr);

/**
 * Canonical part string for @p cfg: "ctrl:adaptive:hedge:0.95".
 * Parsing it back round-trips. A disabled config names itself
 * "ctrl:fixed".
 */
std::string ctrlPartName(const CtrlConfig &cfg);

/** One-line grammar summary for CLI help / --list output. */
const char *ctrlGrammar();

/** Representative ctrl parts for --list output. */
std::vector<std::string> exampleCtrlParts();

} // namespace centaur

#endif // CENTAUR_CTRLPLANE_CTRL_SPEC_HH
