#include "ctrlplane/controllers.hh"

#include <algorithm>
#include <cmath>

namespace centaur {

void
ServiceQuantile::add(double sample_us)
{
    _sorted.insert(std::upper_bound(_sorted.begin(), _sorted.end(),
                                    sample_us),
                   sample_us);
}

double
ServiceQuantile::quantileUs(double q) const
{
    if (_sorted.empty())
        return 0.0;
    const double pos =
        q * static_cast<double>(_sorted.size() - 1);
    std::size_t idx =
        static_cast<std::size_t>(std::ceil(pos));
    if (idx >= _sorted.size())
        idx = _sorted.size() - 1;
    return _sorted[idx];
}

AdaptiveBatcher::AdaptiveBatcher(double initial_window_us,
                                 double max_window_us)
{
    _windowNs = static_cast<std::int64_t>(initial_window_us * 1e3);
    if (_windowNs < 0)
        _windowNs = 0;
    _maxNs = static_cast<std::int64_t>(max_window_us * 1e3);
    if (_maxNs < 1000000)
        _maxNs = 1000000; // floor the cap at 1 ms of headroom
    if (_windowNs > _maxNs)
        _windowNs = _maxNs;
    _minNs = _windowNs;
    _maxSeenNs = _windowNs;
}

void
AdaptiveBatcher::update(std::size_t queue_depth,
                        std::uint32_t max_batch,
                        double worst_latency_us, double target_us)
{
    std::int64_t delta_ns = 0;
    bool has_target = target_us > 0.0;
    if (has_target) {
        // Asymmetric PI on the latency error, fixed-point. The
        // integral is miss-only and leaky (meeting the target drains
        // it, missing charges it), so the loop parks just under the
        // SLO boundary instead of hunting across it: a miss bites a
        // quarter off the window plus kP = 1/8 and the integral's
        // kI = 1/16; headroom only probes the window up at kP = 1/64
        // per update.
        const std::int64_t err_ns = static_cast<std::int64_t>(
            (target_us - worst_latency_us) * 1e3);
        _integralNs -= _integralNs / 8;
        if (err_ns < 0) {
            _integralNs += err_ns / 4;
            _integralNs = std::max(-_maxNs, _integralNs);
            delta_ns = err_ns / 8 + _integralNs / 16 - _windowNs / 4;
        } else {
            delta_ns = err_ns / 64;
        }
    }
    // Queue-depth term: a backlog already covering the coalescing
    // limit means waiting buys nothing (narrow); an underfull queue
    // means the window is what fills batches (widen). With an SLO
    // target the latency loop owns the window, so the depth term is
    // scaled down to a tie-breaker.
    const std::int64_t depth_err =
        static_cast<std::int64_t>(max_batch) - 1 -
        static_cast<std::int64_t>(queue_depth);
    delta_ns += depth_err * (has_target ? 1000 : 4000) /
                std::max<std::int64_t>(1, max_batch);

    _windowNs += delta_ns;
    _windowNs = std::max<std::int64_t>(
        0, std::min(_maxNs, _windowNs));

    ++_updates;
    _minNs = std::min(_minNs, _windowNs);
    _maxSeenNs = std::max(_maxSeenNs, _windowNs);
    _sumNs += static_cast<double>(_windowNs);
}

void
AdaptiveBatcher::fill(CtrlStats *out) const
{
    out->windowUpdates = _updates;
    out->windowMinUs = static_cast<double>(_minNs) * 1e-3;
    out->windowMaxUs = static_cast<double>(_maxSeenNs) * 1e-3;
    out->windowFinalUs = windowUs();
    out->windowMeanUs =
        _updates ? _sumNs * 1e-3 / static_cast<double>(_updates)
                 : windowUs();
}

Autoscaler::Autoscaler(const CtrlConfig &cfg, std::uint32_t pool,
                       double interval_us)
    : _loUtil(cfg.scaleLoUtil), _hiUtil(cfg.scaleHiUtil),
      _pool(pool), _active(pool), _intervalUs(interval_us),
      _nextControlUs(interval_us), _minActive(pool),
      _maxActive(pool)
{
}

int
Autoscaler::decide(double busy_us)
{
    const double capacity_us =
        _intervalUs * static_cast<double>(_active);
    const double util =
        capacity_us > 0.0 ? busy_us / capacity_us : 0.0;
    int dir = 0;
    if (util < _loUtil && _active > 1) {
        --_active;
        ++_downs;
        dir = -1;
    } else if (util > _hiUtil && _active < _pool) {
        ++_active;
        ++_ups;
        dir = 1;
    }
    _minActive = std::min(_minActive, _active);
    _maxActive = std::max(_maxActive, _active);
    ++_decisions;
    _activeSum += static_cast<double>(_active);
    _nextControlUs += _intervalUs;
    return dir;
}

void
Autoscaler::fill(CtrlStats *out) const
{
    out->scaleUps = _ups;
    out->scaleDowns = _downs;
    out->activeMin = _minActive;
    out->activeMax = _maxActive;
    out->meanActiveWorkers =
        _decisions ? _activeSum / static_cast<double>(_decisions)
                   : static_cast<double>(_active);
}

} // namespace centaur
