#include "ctrlplane/ctrl_spec.hh"

#include <cstdio>
#include <cstdlib>

namespace centaur {

namespace {

constexpr const char *kGrammar =
    "ctrl:<fixed|adaptive>[:hedge[:<q>]][:scale[:<lo>-<hi>]]";

/** Parse a finite double, consuming the whole string. */
bool
parseNumber(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

/** Shortest %g form that round-trips through parseNumber. */
std::string
formatNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

bool
failWith(std::string *error, const std::string &part,
         const std::string &why)
{
    if (error)
        *error = "bad ctrl part '" + part + "': " + why +
                 "; grammar: " + kGrammar;
    return false;
}

/** Split on ':' keeping empty tokens (they are errors downstream). */
std::vector<std::string>
splitColons(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = text.find(':', start);
        if (colon == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }
}

} // namespace

bool
tryParseCtrlPart(const std::string &part, CtrlConfig *out,
                 std::string *error)
{
    const std::vector<std::string> tok = splitColons(part);
    if (tok.empty() || tok[0] != "ctrl")
        return failWith(error, part, "must start with 'ctrl:'");
    if (tok.size() < 2)
        return failWith(error, part,
                        "needs a window policy, 'fixed' or "
                        "'adaptive'");

    CtrlConfig cfg;
    if (tok[1] == "adaptive") {
        cfg.adaptive = true;
    } else if (tok[1] != "fixed") {
        return failWith(error, part,
                        "unknown window policy '" + tok[1] +
                            "' (want 'fixed' or 'adaptive')");
    }

    for (std::size_t i = 2; i < tok.size(); ++i) {
        if (tok[i] == "hedge") {
            if (cfg.hedge)
                return failWith(error, part, "duplicate 'hedge'");
            cfg.hedge = true;
            // Optional quantile token right after.
            double q = 0.0;
            if (i + 1 < tok.size() &&
                parseNumber(tok[i + 1], &q)) {
                if (q <= 0.0 || q >= 1.0)
                    return failWith(error, part,
                                    "hedge quantile '" + tok[i + 1] +
                                        "' must be in (0, 1)");
                cfg.hedgeQuantile = q;
                ++i;
            }
        } else if (tok[i] == "scale") {
            if (cfg.scale)
                return failWith(error, part, "duplicate 'scale'");
            cfg.scale = true;
            // Optional <lo>-<hi> band token right after.
            if (i + 1 < tok.size() &&
                tok[i + 1].find('-') != std::string::npos) {
                const std::string &band = tok[i + 1];
                const std::size_t dash = band.find('-');
                double lo = 0.0;
                double hi = 0.0;
                if (!parseNumber(band.substr(0, dash), &lo) ||
                    !parseNumber(band.substr(dash + 1), &hi))
                    return failWith(error, part,
                                    "scale band '" + band +
                                        "' must be <lo>-<hi>");
                if (lo < 0.0 || hi > 1.0 || lo >= hi)
                    return failWith(
                        error, part,
                        "scale band '" + band +
                            "' needs 0 <= lo < hi <= 1");
                cfg.scaleLoUtil = lo;
                cfg.scaleHiUtil = hi;
                ++i;
            }
        } else {
            return failWith(error, part,
                            "unknown token '" + tok[i] +
                                "' (want 'hedge' or 'scale')");
        }
    }

    if (out)
        *out = cfg;
    return true;
}

std::string
ctrlPartName(const CtrlConfig &cfg)
{
    std::string name = "ctrl:";
    name += cfg.adaptive ? "adaptive" : "fixed";
    if (cfg.hedge)
        name += ":hedge:" + formatNumber(cfg.hedgeQuantile);
    if (cfg.scale)
        name += ":scale:" + formatNumber(cfg.scaleLoUtil) + "-" +
                formatNumber(cfg.scaleHiUtil);
    return name;
}

const char *
ctrlGrammar()
{
    return kGrammar;
}

std::vector<std::string>
exampleCtrlParts()
{
    return {"ctrl:fixed", "ctrl:adaptive", "ctrl:fixed:hedge:0.99",
            "ctrl:adaptive:hedge:0.95:scale:0.3-0.8"};
}

} // namespace centaur
