/**
 * @file
 * Deterministic closed-loop controllers for the serving engines.
 *
 * The control plane (ISCA'20 tail-at-scale mitigations, ROADMAP
 * "closed-loop serving") is four cooperating controllers layered
 * over the PR 5 single-node engine (core/server.cc) and the PR 7
 * cluster engine (cluster/engine.cc):
 *
 *   SloTracker       per-class p99 targets from the workload grammar
 *                    ("/slo:<class>:<p99_us>"); requests are stamped
 *                    with a class at generation time (id % classes)
 *   AdaptiveBatcher  widens/narrows the coalescing window against
 *                    queue depth and p99-vs-target error, PID-style
 *                    with fixed-point (integer-nanosecond) gains
 *   ServiceQuantile  streaming service-time quantile arming hedged
 *                    duplicate dispatches
 *   Autoscaler       drains/re-adds workers (cluster: whole nodes)
 *                    on an interval-utilization band
 *
 * Every controller is plain integer/IEEE arithmetic fed in
 * request-id / tick order - no wall clock, no host randomness - so
 * closed-loop runs stay byte-identical at any --jobs count. The
 * engines instantiate these per run but consult them only behind
 * the CtrlConfig flags; a disabled config ("ctrl:fixed") keeps the
 * open-loop path tick-identical to the PR 8 engine.
 */

#ifndef CENTAUR_CTRLPLANE_CONTROLLERS_HH
#define CENTAUR_CTRLPLANE_CONTROLLERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ctrlplane/ctrl_spec.hh"

namespace centaur {

/** Per-SLO-class serving outcome (report schema v1.6). */
struct SloClassStats
{
    std::string name;         //!< class label from the workload spec
    double targetUs = 0.0;    //!< p99 latency target
    std::uint64_t offered = 0;
    std::uint64_t served = 0;
    double p99Us = 0.0;       //!< observed p99 over served requests
    /** Fraction of *offered* class requests completed within the
     *  target (drops count as misses). */
    double attainment = 0.0;
};

/** Control-plane outcome of one serving run (report schema v1.6). */
struct CtrlStats
{
    /** Canonical policy the run executed (ctrlPartName). */
    std::string policy = "ctrl:fixed";

    // Adaptive-batcher window trajectory (microseconds).
    std::uint64_t windowUpdates = 0;
    double windowMinUs = 0.0;
    double windowMeanUs = 0.0;
    double windowMaxUs = 0.0;
    double windowFinalUs = 0.0;

    // Hedged duplicates.
    std::uint64_t hedgeDispatches = 0;
    std::uint64_t hedgeWins = 0;   //!< the clone finished first
    std::uint64_t hedgeLosses = 0; //!< the primary finished first
    /** Loser time actually burned before cancellation. */
    double hedgeWastedUs = 0.0;
    /** Energy the cancelled losers burned (prorated). */
    double hedgeEnergyJoules = 0.0;

    // Autoscaler.
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;
    std::uint32_t activeMin = 0; //!< fewest simultaneously active
    std::uint32_t activeMax = 0; //!< most simultaneously active
    double meanActiveWorkers = 0.0;
};

/**
 * Streaming quantile over an append-only sample set (sorted-insert
 * vector; fine for the few hundred dispatches of a serving run).
 * Used as the hedge trigger: a dispatch whose service time exceeds
 * quantile(q) of everything observed so far is a straggler.
 */
class ServiceQuantile
{
  public:
    void add(double sample_us);

    /** Enough history to trust the tail estimate? */
    bool
    ready() const
    {
        return _sorted.size() >= kMinSamples;
    }

    /** The q-quantile of the samples so far (0 when empty). */
    double quantileUs(double q) const;

    std::uint64_t
    samples() const
    {
        return _sorted.size();
    }

    static constexpr std::size_t kMinSamples = 8;

  private:
    std::vector<double> _sorted;
};

/**
 * PID-style coalescing-window controller with fixed-point gains:
 * the window lives as integer nanoseconds, and every gain is an
 * integer shift, so the trajectory is exactly reproducible. Updated
 * once per dispatch, at the dispatch tick, in request-id order.
 *
 * With a p99 target the error term is (target - worst latency of
 * the dispatched batch): misses narrow the window multiplicatively
 * (serve sooner), headroom widens it (batch more, spend less
 * energy). Without SLO classes the controller falls back to queue
 * depth alone - an underfull queue widens, a saturated one narrows.
 */
class AdaptiveBatcher
{
  public:
    /**
     * @param initial_window_us the configured open-loop window
     * @param max_window_us trajectory cap (headroom can only widen
     *        this far; 0 floors at 1 ms)
     */
    AdaptiveBatcher(double initial_window_us, double max_window_us);

    /** Current window the engine's batching loop should use. */
    double
    windowUs() const
    {
        return static_cast<double>(_windowNs) * 1e-3;
    }

    /**
     * One control step after a dispatch. @p queue_depth is the
     * post-dispatch backlog, @p max_batch the coalescing limit,
     * @p worst_latency_us the slowest request latency the dispatch
     * completed, @p target_us the tightest p99 target among the
     * dispatched classes (0 = no SLO classes).
     */
    void update(std::size_t queue_depth, std::uint32_t max_batch,
                double worst_latency_us, double target_us);

    std::uint64_t
    updates() const
    {
        return _updates;
    }

    /** Fill the window-trajectory block of @p out. */
    void fill(CtrlStats *out) const;

  private:
    std::int64_t _windowNs = 0;
    std::int64_t _maxNs = 0;
    std::int64_t _integralNs = 0;
    std::uint64_t _updates = 0;
    std::int64_t _minNs = 0;
    std::int64_t _maxSeenNs = 0;
    double _sumNs = 0.0;
};

/**
 * Utilization-band autoscaler. The engine calls decide() at fixed
 * control boundaries (interval ticks on the shared event queue, so
 * decisions are totally ordered); the scaler owns the active count
 * and trajectory, the engine owns which worker/node index actually
 * drains or wakes.
 */
class Autoscaler
{
  public:
    /**
     * @param cfg the scale band
     * @param pool total workers (or nodes) available
     * @param interval_us control period
     */
    Autoscaler(const CtrlConfig &cfg, std::uint32_t pool,
               double interval_us);

    /** Next control boundary due at or before @p now_us? */
    bool
    due(double now_us) const
    {
        return now_us >= _nextControlUs;
    }

    double
    intervalUs() const
    {
        return _intervalUs;
    }

    /**
     * One control step: @p busy_us is lane-busy time accumulated
     * since the previous boundary. Returns +1 (re-add one), -1
     * (drain one) or 0 (hold); advances the boundary and the
     * trajectory stats either way.
     */
    int decide(double busy_us);

    std::uint32_t
    active() const
    {
        return _active;
    }

    /** Fill the autoscaler block of @p out. */
    void fill(CtrlStats *out) const;

  private:
    double _loUtil;
    double _hiUtil;
    std::uint32_t _pool;
    std::uint32_t _active;
    double _intervalUs;
    double _nextControlUs;
    std::uint64_t _ups = 0;
    std::uint64_t _downs = 0;
    std::uint32_t _minActive;
    std::uint32_t _maxActive;
    std::uint64_t _decisions = 0;
    double _activeSum = 0.0;
};

} // namespace centaur

#endif // CENTAUR_CTRLPLANE_CONTROLLERS_HH
