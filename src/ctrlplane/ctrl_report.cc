/**
 * @file
 * JSON serialization of the control plane's counters (schema v1.6).
 * Lives next to the subsystem it describes so the schema-sync lint
 * (tools/centaur_lint.py) can cross-check every emitted key against
 * tools/check_bench.py's classification tables.
 */

#include "ctrlplane/ctrl_report.hh"

namespace centaur {

Json
toJson(const SloClassStats &cs)
{
    Json j = Json::object();
    j["name"] = cs.name;
    j["target_us"] = cs.targetUs;
    j["offered"] = cs.offered;
    j["served"] = cs.served;
    j["p99_us"] = cs.p99Us;
    j["attainment"] = cs.attainment;
    return j;
}

Json
toJson(const CtrlStats &cs)
{
    Json j = Json::object();
    j["policy"] = cs.policy;
    // A count of controller decisions, not a duration.
    // centaur-lint: allow(unit-suffix)
    j["window_updates"] = cs.windowUpdates;
    j["window_min_us"] = cs.windowMinUs;
    j["window_mean_us"] = cs.windowMeanUs;
    j["window_max_us"] = cs.windowMaxUs;
    j["window_final_us"] = cs.windowFinalUs;
    j["hedge_dispatches"] = cs.hedgeDispatches;
    j["hedge_wins"] = cs.hedgeWins;
    j["hedge_losses"] = cs.hedgeLosses;
    j["hedge_wasted_us"] = cs.hedgeWastedUs;
    j["hedge_energy_joules"] = cs.hedgeEnergyJoules;
    j["scale_ups"] = cs.scaleUps;
    j["scale_downs"] = cs.scaleDowns;
    j["active_min"] = cs.activeMin;
    j["active_max"] = cs.activeMax;
    j["mean_active_workers"] = cs.meanActiveWorkers;
    return j;
}

} // namespace centaur
