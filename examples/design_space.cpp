/**
 * @file
 * Architect's tour of the Centaur design space: sweeps the three
 * knobs the paper's Discussion section calls out - chiplet link
 * bandwidth, cache-bypass routing and PE-array size - on one model
 * and prints latency plus whether the design still fits the GX1150.
 * Start here before committing to an accelerator configuration.
 */

#include <cstdio>
#include <iostream>

#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "fpga/resource_model.hh"
#include "sim/table.hh"

using namespace centaur;

namespace {

double
runPoint(const DlrmConfig &model, const CentaurConfig &acc,
         std::uint32_t batch)
{
    auto sys = SystemBuilder()
                   .spec("cpu+fpga")
                   .model(model)
                   .fpga(acc)
                   .build();
    WorkloadConfig wl;
    wl.batch = batch;
    wl.seed = 99;
    WorkloadGenerator gen(model, wl);
    return usFromTicks(measureInference(*sys, gen, 1).latency());
}

} // namespace

int
main()
{
    const DlrmConfig model = dlrmPreset(4);
    const std::uint32_t batch = 32;

    TextTable table("Centaur design-space sweep, DLRM(4) batch 32");
    table.setHeader({"variant", "latency (us)", "GFLOPS", "DSP",
                     "fits GX1150"});

    auto add = [&](const char *name, const CentaurConfig &acc) {
        const ResourceModel res(acc);
        table.addRow({name,
                      TextTable::fmt(runPoint(model, acc, batch)),
                      TextTable::fmt(acc.peakGflops(), 0),
                      std::to_string(res.deviceUsage().dsp),
                      res.fits() ? "yes" : "NO"});
    };

    add("baseline (HARPv2)", CentaurConfig{});

    CentaurConfig fast_links;
    for (auto &l : fast_links.channel.links)
        l.bandwidthGBps *= 4.0;
    fast_links.channel.maxOutstandingLines *= 4;
    add("4x link bandwidth", fast_links);

    CentaurConfig bypass;
    bypass.bypassCpuCache = true;
    add("cache-bypass path", bypass);

    CentaurConfig bypass_fast = fast_links;
    bypass_fast.bypassCpuCache = true;
    add("4x links + bypass", bypass_fast);

    CentaurConfig big_array;
    big_array.mlpPeRows = 6;
    big_array.mlpPeCols = 6;
    add("6x6 PE array", big_array);

    CentaurConfig kitchen_sink = bypass_fast;
    kitchen_sink.mlpPeRows = 6;
    kitchen_sink.mlpPeCols = 6;
    add("4x links + bypass + 6x6", kitchen_sink);

    table.print(std::cout);

    std::printf("reading the table: links dominate for gather-bound "
                "models; the PE array only pays off for MLP-heavy\n"
                "workloads (try dlrmPreset(6)); the bypass needs fast "
                "links before it matters - exactly the paper's "
                "Section VII argument.\n");
    return 0;
}
