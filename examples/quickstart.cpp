/**
 * @file
 * Quickstart: build a Table I model, run one inference on each of
 * the three design points and print latency, phase breakdown,
 * effective embedding throughput and energy.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/system.hh"
#include "core/system_builder.hh"
#include "dlrm/model_config.hh"
#include "dlrm/workload.hh"

using namespace centaur;

int
main()
{
    // DLRM(1): 5 embedding tables, 20 gathers each, 128 MB of
    // tables, 57 KB of MLP weights.
    const DlrmConfig model = dlrmPreset(1);
    const std::uint32_t batch = 16;

    std::printf("model %s: %u tables x %u gathers, %.1f MB tables, "
                "%.1f KB MLP\n\n",
                model.name.c_str(), model.numTables,
                model.lookupsPerTable,
                static_cast<double>(model.totalTableBytes()) / 1e6,
                static_cast<double>(model.mlpParamBytes()) / 1024.0);

    for (const char *spec : {"cpu+gpu", "cpu", "cpu+fpga"}) {
        auto sys = makeSystem(spec, model);
        WorkloadConfig wl;
        wl.batch = batch;
        wl.seed = 7;
        WorkloadGenerator gen(model, wl);
        const InferenceResult res = measureInference(*sys, gen, 1);

        std::printf("%-9s latency %8.2f us | emb %5.2f GB/s | "
                    "%5.1f W | %8.2f uJ\n",
                    sys->name().c_str(), usFromTicks(res.latency()),
                    res.effectiveEmbGBps, res.powerWatts,
                    res.energyJoules * 1e6);
        std::printf("          breakdown:");
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            const auto ph = static_cast<Phase>(p);
            if (res.phaseTicks(ph) == 0)
                continue;
            std::printf(" %s %.1f%%", phaseName(ph),
                        res.phaseShare(ph) * 100.0);
        }
        std::printf("\n          p(click|sample0) = %.4f\n\n",
                    res.probabilities.empty()
                        ? 0.0
                        : res.probabilities.front());
    }
    return 0;
}
