/**
 * @file
 * Tail-latency study: drives each design point with Poisson request
 * traffic at increasing offered load and reports p50/p99 latency,
 * utilization and SLA hit rate. This is the provisioning view of the
 * paper's speedups: lower service time buys either lower tails or
 * more load per node.
 */

#include <cstdio>
#include <iostream>

#include "core/server.hh"
#include "core/system.hh"
#include "core/system_builder.hh"
#include "dlrm/model_config.hh"
#include "sim/table.hh"

using namespace centaur;

int
main()
{
    const DlrmConfig model = dlrmPreset(1);
    constexpr double kSlaUs = 500.0;

    std::printf("Poisson serving of %s, 8 samples/request, "
                "SLA %.0f us\n\n",
                model.name.c_str(), kSlaUs);

    TextTable table("tail latency vs offered load");
    table.setHeader({"design", "offered rps", "p50 (us)", "p99 (us)",
                     "util", "SLA hit", "J/request"});

    for (const char *spec : {"cpu", "cpu+fpga"}) {
        for (double rps : {1000.0, 4000.0, 12000.0}) {
            auto sys = makeSystem(spec, model);
            ServerConfig cfg;
            cfg.arrivalRatePerSec = rps;
            cfg.batchPerRequest = 8;
            cfg.requests = 250;
            cfg.seed = 7;
            InferenceServer server(*sys, cfg, kSlaUs);
            const auto s = server.run();
            table.addRow({sys->name(), TextTable::fmt(rps, 0),
                          TextTable::fmt(s.p50Us, 0),
                          TextTable::fmt(s.p99Us, 0),
                          TextTable::fmt(s.utilization, 2),
                          TextTable::fmt(s.slaHitRate * 100, 1) + "%",
                          TextTable::fmt(s.energyJoules / s.served *
                                             1000.0, 2) + " mJ"});
        }
    }
    table.print(std::cout);

    std::printf("takeaway: the CPU node saturates (util -> 1, p99 "
                "explodes) at loads Centaur absorbs with slack -\n"
                "the SLA/TCO argument of Section IV-A in queueing "
                "form.\n");
    return 0;
}
