/**
 * @file
 * Ads-serving scenario: a user-facing CTR (click-through-rate)
 * service with a firm latency SLA - the deployment the paper's
 * introduction motivates. Part one sweeps the serving batch size on
 * a many-table model (DLRM(4)-class) and reports, per design point,
 * which operating points meet the SLA and at what throughput and
 * energy cost. Part two provisions an actual fleet with the serving
 * engine: Poisson traffic into an admission queue, batch coalescing,
 * and a queue-depth overload guard.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/analysis.hh"
#include "core/experiment.hh"
#include "core/server.hh"
#include "core/system.hh"
#include "core/system_builder.hh"
#include "sim/table.hh"

using namespace centaur;

int
main()
{
    constexpr double kSlaMs = 1.0; // 1 ms tail budget per request
    const DlrmConfig model = dlrmPreset(4);

    std::printf("ads CTR serving on %s (%u tables x %u gathers, "
                "%.2f GB of embeddings), SLA %.1f ms\n\n",
                model.name.c_str(), model.numTables,
                model.lookupsPerTable,
                static_cast<double>(model.totalTableBytes()) / 1e9,
                kSlaMs);

    TextTable table("SLA study: latency / throughput / energy per "
                    "batch size");
    table.setHeader({"design", "batch", "latency (ms)", "SLA",
                     "samples/s", "J per 1k samples"});

    for (const char *spec : {"cpu", "cpu+gpu", "cpu+fpga"}) {
        for (std::uint32_t batch : {1u, 8u, 32u, 128u}) {
            auto sys = makeSystem(spec, model);
            WorkloadConfig wl;
            wl.batch = batch;
            wl.seed = 1234 + batch;
            WorkloadGenerator gen(model, wl);
            const auto res = measureInference(*sys, gen, 1);

            const double ms = msFromTicks(res.latency());
            const double samples_per_sec =
                batch * res.inferencesPerSec();
            const double joules_per_1k =
                res.energyJoules / batch * 1000.0;
            table.addRow({sys->name(), std::to_string(batch),
                          TextTable::fmt(ms, 3),
                          ms <= kSlaMs ? "meets" : "MISSES",
                          TextTable::fmt(samples_per_sec, 0),
                          TextTable::fmt(joules_per_1k, 2)});
        }
    }
    table.print(std::cout);

    std::printf("takeaway: Centaur extends the SLA-feasible batch "
                "range and cuts energy per served sample, the\n"
                "paper's motivation for in-package acceleration of "
                "user-facing recommendation.\n\n");

    // ----- provisioning the service with the serving engine -----
    // Fixed Poisson traffic; sweep the fleet size and the coalescing
    // limit and report what an operator sees: tail latency, SLA hit
    // rate, drops under the queue-depth guard, and the regime the
    // analyzer assigns.
    constexpr double kOfferedRps = 3000.0;
    TextTable fleet("fleet provisioning on Centaur at " +
                    TextTable::fmt(kOfferedRps, 0) +
                    " rps (8 samples/request)");
    fleet.setHeader({"workers", "coalesce", "tput (rps)", "p99 (ms)",
                     "SLA hit", "dropped", "util", "regime"});

    for (std::uint32_t nworkers : {1u, 2u, 4u}) {
        for (std::uint32_t limit : {1u, 8u}) {
            ServingConfig cfg;
            cfg.arrivalRatePerSec = kOfferedRps;
            cfg.batchPerRequest = 8;
            cfg.requests = 300;
            cfg.seed = 42;
            cfg.workers = nworkers;
            cfg.maxCoalescedBatch = limit;
            cfg.maxQueueDepth = 64; // shed rather than queue forever
            cfg.slaTargetUs = kSlaMs * 1000.0;
            const ServingStats s =
                runServingSim("cpu+fpga", model, cfg);
            const ServingVerdict verdict = analyzeServing(s, cfg);
            fleet.addRow(
                {std::to_string(nworkers), std::to_string(limit),
                 TextTable::fmt(s.throughputRps, 0),
                 TextTable::fmt(s.p99Us / 1000.0, 2),
                 TextTable::fmt(s.slaHitRate * 100, 1) + "%",
                 std::to_string(s.droppedQueueFull +
                                s.droppedTimeout),
                 TextTable::fmt(s.utilization, 2),
                 servingRegimeName(verdict.regime)});
        }
    }
    fleet.print(std::cout);

    std::printf("takeaway: 8-sample requests already amortize this "
                "model's MLP cost, so the SLA dollar buys\n"
                "workers, not deeper batching - the analyzer's "
                "regime column makes that call quantitative.\n");
    return 0;
}
