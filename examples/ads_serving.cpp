/**
 * @file
 * Ads-serving scenario: a user-facing CTR (click-through-rate)
 * service with a firm latency SLA - the deployment the paper's
 * introduction motivates. Sweeps the serving batch size on a
 * many-table model (DLRM(4)-class) and reports, per design point,
 * which operating points meet the SLA and at what throughput and
 * energy cost.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "sim/table.hh"

using namespace centaur;

int
main()
{
    constexpr double kSlaMs = 1.0; // 1 ms tail budget per request
    const DlrmConfig model = dlrmPreset(4);

    std::printf("ads CTR serving on %s (%u tables x %u gathers, "
                "%.2f GB of embeddings), SLA %.1f ms\n\n",
                model.name.c_str(), model.numTables,
                model.lookupsPerTable,
                static_cast<double>(model.totalTableBytes()) / 1e9,
                kSlaMs);

    TextTable table("SLA study: latency / throughput / energy per "
                    "batch size");
    table.setHeader({"design", "batch", "latency (ms)", "SLA",
                     "samples/s", "J per 1k samples"});

    for (DesignPoint dp : {DesignPoint::CpuOnly, DesignPoint::CpuGpu,
                           DesignPoint::Centaur}) {
        for (std::uint32_t batch : {1u, 8u, 32u, 128u}) {
            auto sys = makeSystem(dp, model);
            WorkloadConfig wl;
            wl.batch = batch;
            wl.seed = 1234 + batch;
            WorkloadGenerator gen(model, wl);
            const auto res = measureInference(*sys, gen, 1);

            const double ms = msFromTicks(res.latency());
            const double samples_per_sec =
                batch * res.inferencesPerSec();
            const double joules_per_1k =
                res.energyJoules / batch * 1000.0;
            table.addRow({sys->name(), std::to_string(batch),
                          TextTable::fmt(ms, 3),
                          ms <= kSlaMs ? "meets" : "MISSES",
                          TextTable::fmt(samples_per_sec, 0),
                          TextTable::fmt(joules_per_1k, 2)});
        }
    }
    table.print(std::cout);

    std::printf("takeaway: Centaur extends the SLA-feasible batch "
                "range and cuts energy per served sample, the\n"
                "paper's motivation for in-package acceleration of "
                "user-facing recommendation.\n");
    return 0;
}
