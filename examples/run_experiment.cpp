/**
 * @file
 * Command-line experiment runner: pick a Table I preset, design
 * point, batch size and index distribution; get latency breakdown,
 * throughput, energy and a bottleneck analysis. The fastest way to
 * poke at the simulator without writing code.
 *
 * Usage:
 *   example_run_experiment [preset 1-6] [cpu|gpu|centaur]
 *                          [batch] [uniform|zipf] [warmups]
 * Defaults: 1 centaur 16 uniform 1
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/analysis.hh"
#include "core/experiment.hh"
#include "core/system_builder.hh"
#include "fpga/centaur_config.hh"

using namespace centaur;

int
main(int argc, char **argv)
{
    const int preset = argc > 1 ? std::atoi(argv[1]) : 1;
    const char *design = argc > 2 ? argv[2] : "centaur";
    const std::uint32_t batch =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 16;
    const bool zipf = argc > 4 && std::strcmp(argv[4], "zipf") == 0;
    const int warmups = argc > 5 ? std::atoi(argv[5]) : 1;

    if (preset < 1 || preset > 6 || batch == 0) {
        std::fprintf(stderr,
                     "usage: %s [preset 1-6] [cpu|gpu|centaur] "
                     "[batch] [uniform|zipf] [warmups]\n",
                     argv[0]);
        return 1;
    }

    const char *spec = "cpu+fpga";
    if (std::strcmp(design, "cpu") == 0)
        spec = "cpu";
    else if (std::strcmp(design, "gpu") == 0)
        spec = "cpu+gpu";

    const DlrmConfig model = dlrmPreset(preset);
    auto sys = makeSystem(spec, model);
    WorkloadConfig wl;
    wl.batch = batch;
    wl.dist = zipf ? IndexDistribution::Zipf
                   : IndexDistribution::Uniform;
    wl.seed = sweepSeed(preset, batch);
    WorkloadGenerator gen(model, wl);

    const InferenceResult res = measureInference(*sys, gen, warmups);

    std::printf("%s on %s, batch %u, %s indices\n", sys->name().c_str(),
                model.name.c_str(), batch, zipf ? "zipf" : "uniform");
    std::printf("  latency        %10.2f us\n",
                usFromTicks(res.latency()));
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const auto ph = static_cast<Phase>(p);
        if (res.phaseTicks(ph) == 0)
            continue;
        std::printf("    %-6s       %10.2f us  (%.1f%%)\n",
                    phaseName(ph), usFromTicks(res.phaseTicks(ph)),
                    res.phaseShare(ph) * 100.0);
    }
    std::printf("  emb throughput %10.2f GB/s\n",
                res.effectiveEmbGBps);
    std::printf("  power/energy   %10.1f W / %.2f uJ\n",
                res.powerWatts, res.energyJoules * 1e6);
    std::printf("  p(sample 0)    %10.4f\n\n",
                res.probabilities.empty() ? 0.0
                                          : res.probabilities[0]);

    std::vector<PhaseVerdict> verdicts;
    if (std::strcmp(spec, "cpu+fpga") == 0)
        verdicts = analyzeCentaur(res, model, CentaurConfig{});
    else if (std::strcmp(spec, "cpu") == 0)
        verdicts = analyzeCpuOnly(res, model);
    for (const auto &v : verdicts)
        std::printf("  %-5s limited by %-18s (%.0f%% of ceiling) - "
                    "%s\n",
                    phaseName(v.phase), bottleneckName(v.limiter),
                    v.utilization * 100.0, v.note.c_str());
    return 0;
}
