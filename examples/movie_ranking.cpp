/**
 * @file
 * Streaming-service ranking scenario: a custom (non-Table I) model
 * with user/movie/genre-style embedding tables of different sizes,
 * and production-like Zipfian item popularity. Demonstrates
 * configuring your own DlrmConfig and how index locality changes
 * the CPU-vs-Centaur picture (skewed indices make CPU caches work;
 * Centaur's advantage is largest on cold, uniform traffic).
 */

#include <cstdio>
#include <iostream>

#include "core/experiment.hh"
#include "core/system.hh"
#include "core/system_builder.hh"
#include "sim/table.hh"

using namespace centaur;

int
main()
{
    // A "video on demand" ranker: 8 tables x 48 lookups, 1M-row
    // catalog tables (4 GB total), a slightly deeper bottom MLP.
    DlrmConfig model;
    model.name = "vod-ranker";
    model.numTables = 8;
    model.lookupsPerTable = 48;
    model.rowsPerTable = 1000000;
    model.bottomMlp = {256, 128, 32};
    model.topMlp = {64, 16};

    std::printf("%s: %u tables x %u lookups, %.2f GB embeddings, "
                "%.1f KB MLP\n\n",
                model.name.c_str(), model.numTables,
                model.lookupsPerTable,
                static_cast<double>(model.totalTableBytes()) / 1e9,
                static_cast<double>(model.mlpParamBytes()) / 1024.0);

    TextTable table("uniform vs Zipfian item popularity (batch 16)");
    table.setHeader({"design", "distribution", "latency (us)",
                     "emb GB/s", "p(top-1 sample)"});

    for (const char *spec : {"cpu", "cpu+fpga"}) {
        for (auto dist : {IndexDistribution::Uniform,
                          IndexDistribution::Zipf}) {
            auto sys = makeSystem(spec, model);
            WorkloadConfig wl;
            wl.batch = 16;
            wl.dist = dist;
            wl.zipfSkew = 1.0;
            wl.seed = 2024;
            WorkloadGenerator gen(model, wl);
            const auto res = measureInference(*sys, gen, 2);
            table.addRow(
                {sys->name(),
                 dist == IndexDistribution::Zipf ? "zipf(1.0)"
                                                 : "uniform",
                 TextTable::fmt(usFromTicks(res.latency())),
                 TextTable::fmt(res.effectiveEmbGBps),
                 TextTable::fmt(res.probabilities.front(), 4)});
        }
    }
    table.print(std::cout);

    std::printf("takeaway: popularity skew lets the CPU's LLC absorb "
                "part of the gather traffic, narrowing (but not\n"
                "closing) Centaur's embedding-layer advantage - worth "
                "checking against your own trace.\n");
    return 0;
}
